#include "storage/table.h"

namespace mds {

Table::Table(BufferPool* pool, Schema schema)
    : pool_(pool),
      schema_(std::move(schema)),
      rows_per_page_(kPageUsableSize / schema_.row_size()) {
  MDS_CHECK(rows_per_page_ > 0);
}

Result<Table> Table::Create(BufferPool* pool, Schema schema) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("Table::Create: empty schema");
  }
  if (schema.row_size() > kPageUsableSize) {
    return Status::InvalidArgument(
        "Table::Create: row larger than a page's usable bytes");
  }
  return Table(pool, std::move(schema));
}

Result<Table> Table::Attach(BufferPool* pool, Schema schema,
                            std::vector<PageId> page_ids, uint64_t num_rows) {
  MDS_ASSIGN_OR_RETURN(Table table, Create(pool, std::move(schema)));
  uint64_t needed =
      (num_rows + table.rows_per_page_ - 1) / table.rows_per_page_;
  if (page_ids.size() != needed) {
    return Status::InvalidArgument(
        "Table::Attach: page count does not match row count");
  }
  for (PageId id : page_ids) {
    if (id >= pool->pager()->NumPages()) {
      return Status::InvalidArgument("Table::Attach: page id beyond file end");
    }
  }
  table.page_ids_ = std::move(page_ids);
  table.num_rows_ = num_rows;
  return table;
}

Status Table::Append(const RowBuilder& row) {
  uint64_t slot = num_rows_ % rows_per_page_;
  if (slot == 0) {
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Allocate());
    page_ids_.push_back(guard.id());
  }
  MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                       pool_->Fetch(page_ids_.back()));
  std::memcpy(guard.MutablePage().bytes() + slot * schema_.row_size(),
              row.data(), schema_.row_size());
  ++num_rows_;
  return Status::OK();
}

Status Table::ReadRow(uint64_t row_id, uint8_t* out) const {
  if (row_id >= num_rows_) {
    return Status::OutOfRange("Table::ReadRow: row id out of range");
  }
  uint64_t page_index = row_id / rows_per_page_;
  uint64_t slot = row_id % rows_per_page_;
  MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                       pool_->Fetch(page_ids_[page_index]));
  std::memcpy(out, guard.page().bytes() + slot * schema_.row_size(),
              schema_.row_size());
  return Status::OK();
}

}  // namespace mds
