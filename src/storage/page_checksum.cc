#include "storage/page_checksum.h"

#include "common/crc32c.h"

namespace mds {

uint32_t PageStoredCrc(const Page& page) {
  return page.ReadAt<uint32_t>(kPageCrcOffset);
}

uint32_t PageComputedCrc(const Page& page) {
  return Crc32c(page.bytes(), kPageCrcOffset);
}

void StampPageChecksum(Page* page) {
  page->WriteAt<uint8_t>(kPageFormatOffset, kPageFormatV1);
  page->WriteAt<uint32_t>(kPageCrcOffset, PageComputedCrc(*page));
}

PageVerdict VerifyPageChecksum(const Page& page) {
  const uint8_t format = page.ReadAt<uint8_t>(kPageFormatOffset);
  if (format == kPageFormatNone) {
    // The only page legitimately lacking a stamp is a freshly allocated
    // zero page. A nonzero payload under a zero footer means a stamped
    // write was torn before its footer landed — corrupt, not skippable.
    for (size_t off = 0; off < kPageSize; off += sizeof(uint64_t)) {
      if (page.ReadAt<uint64_t>(off) != 0) return PageVerdict::kCorrupt;
    }
    return PageVerdict::kUnformatted;
  }
  if (format != kPageFormatV1) return PageVerdict::kCorrupt;
  return PageStoredCrc(page) == PageComputedCrc(page) ? PageVerdict::kOk
                                                      : PageVerdict::kCorrupt;
}

}  // namespace mds
