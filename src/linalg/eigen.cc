#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mds {

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& input,
                                                int max_sweeps) {
  const size_t n = input.rows();
  if (input.cols() != n) {
    return Status::InvalidArgument("JacobiEigenSymmetric: matrix not square");
  }
  Matrix a = input;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    return std::sqrt(s);
  };

  const double eps = 1e-14;
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(a(i, i)));
  scale = std::max(scale, 1.0);

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= eps * scale * static_cast<double>(n)) {
      converged = true;
      break;
    }
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = a(p, q);
        if (std::abs(apq) <= eps * scale) continue;
        double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply rotation on rows/cols p and q of A and accumulate into V.
        for (size_t k = 0; k < n; ++k) {
          double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged && off_diagonal_norm() > 1e-8 * scale * n) {
    return Status::Internal("JacobiEigenSymmetric: did not converge");
  }

  // Sort by descending eigenvalue, permuting columns of V accordingly.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace mds
