#ifndef MDS_LINALG_EIGEN_H_
#define MDS_LINALG_EIGEN_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace mds {

/// Eigen decomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Computes the eigen decomposition of a symmetric matrix using the cyclic
/// Jacobi rotation method. Fails with InvalidArgument on non-square input
/// and Internal if convergence is not reached (does not happen for
/// symmetric input within the generous sweep limit).
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps = 64);

}  // namespace mds

#endif  // MDS_LINALG_EIGEN_H_
