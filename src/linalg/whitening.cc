#include "linalg/whitening.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"

namespace mds {

Result<Whitening> Whitening::Fit(const Matrix& data, double eigen_floor) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n < 2 || d == 0) {
    return Status::InvalidArgument("Whitening::Fit: need at least 2 rows");
  }
  Whitening w;
  w.mean_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.RowPtr(i);
    for (size_t j = 0; j < d; ++j) w.mean_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) w.mean_[j] /= static_cast<double>(n);

  Matrix cov(d, d);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.RowPtr(i);
    for (size_t a = 0; a < d; ++a) {
      double ca = row[a] - w.mean_[a];
      for (size_t b = a; b < d; ++b) cov(a, b) += ca * (row[b] - w.mean_[b]);
    }
  }
  double inv = 1.0 / static_cast<double>(n - 1);
  for (size_t a = 0; a < d; ++a)
    for (size_t b = a; b < d; ++b) {
      cov(a, b) *= inv;
      cov(b, a) = cov(a, b);
    }

  MDS_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigenSymmetric(cov));

  // ZCA: W = V diag(1/sqrt(lambda)) V^T, W^{-1} = V diag(sqrt(lambda)) V^T.
  w.forward_ = Matrix(d, d);
  w.inverse_ = Matrix(d, d);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < d; ++b) {
      double f = 0.0, g = 0.0;
      for (size_t k = 0; k < d; ++k) {
        double lambda = std::max(eig.values[k], eigen_floor);
        double vak = eig.vectors(a, k);
        double vbk = eig.vectors(b, k);
        f += vak * vbk / std::sqrt(lambda);
        g += vak * vbk * std::sqrt(lambda);
      }
      w.forward_(a, b) = f;
      w.inverse_(a, b) = g;
    }
  }
  return w;
}

Matrix Whitening::Transform(const Matrix& data) const {
  MDS_CHECK(data.cols() == dim());
  Matrix out(data.rows(), dim());
  for (size_t i = 0; i < data.rows(); ++i) {
    TransformPoint(data.RowPtr(i), out.RowPtr(i));
  }
  return out;
}

void Whitening::TransformPoint(const double* in, double* out) const {
  const size_t d = dim();
  for (size_t a = 0; a < d; ++a) {
    double s = 0.0;
    for (size_t b = 0; b < d; ++b) s += forward_(a, b) * (in[b] - mean_[b]);
    out[a] = s;
  }
}

void Whitening::InverseTransformPoint(const double* in, double* out) const {
  const size_t d = dim();
  for (size_t a = 0; a < d; ++a) {
    double s = mean_[a];
    for (size_t b = 0; b < d; ++b) s += inverse_(a, b) * in[b];
    out[a] = s;
  }
}

}  // namespace mds
