#include "linalg/pca.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"

namespace mds {

Result<Pca> Pca::Fit(const Matrix& data, size_t max_components) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n < 2 || d == 0) {
    return Status::InvalidArgument("Pca::Fit: need at least 2 rows");
  }
  Pca pca;
  pca.mean_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.RowPtr(i);
    for (size_t j = 0; j < d; ++j) pca.mean_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) pca.mean_[j] /= static_cast<double>(n);

  size_t keep = max_components == 0 ? std::min(n - 1, d)
                                    : std::min(max_components, std::min(n - 1, d));

  if (d <= n) {
    // Primal: eigen decomposition of the d x d covariance matrix.
    Matrix cov(d, d);
    for (size_t i = 0; i < n; ++i) {
      const double* row = data.RowPtr(i);
      for (size_t a = 0; a < d; ++a) {
        double ca = row[a] - pca.mean_[a];
        for (size_t b = a; b < d; ++b) {
          cov(a, b) += ca * (row[b] - pca.mean_[b]);
        }
      }
    }
    double inv = 1.0 / static_cast<double>(n - 1);
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a; b < d; ++b) {
        cov(a, b) *= inv;
        cov(b, a) = cov(a, b);
      }
    }
    MDS_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigenSymmetric(cov));
    pca.total_variance_ = 0.0;
    for (double v : eig.values) pca.total_variance_ += std::max(v, 0.0);
    pca.components_ = Matrix(keep, d);
    pca.variance_.resize(keep);
    for (size_t j = 0; j < keep; ++j) {
      pca.variance_[j] = std::max(eig.values[j], 0.0);
      for (size_t a = 0; a < d; ++a) pca.components_(j, a) = eig.vectors(a, j);
    }
  } else {
    // Dual (Gram-matrix) PCA for wide data such as 3000-sample spectra:
    // eigenvectors of X X^T / (n-1) give the projections; directions are
    // recovered as X^T u / sqrt((n-1) lambda).
    Matrix gram(n, n);
    std::vector<double> centered(d);
    // Center rows lazily while accumulating the Gram matrix.
    for (size_t i = 0; i < n; ++i) {
      const double* ri = data.RowPtr(i);
      for (size_t j = i; j < n; ++j) {
        const double* rj = data.RowPtr(j);
        double s = 0.0;
        for (size_t a = 0; a < d; ++a) {
          s += (ri[a] - pca.mean_[a]) * (rj[a] - pca.mean_[a]);
        }
        gram(i, j) = s / static_cast<double>(n - 1);
        gram(j, i) = gram(i, j);
      }
    }
    MDS_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigenSymmetric(gram));
    pca.total_variance_ = 0.0;
    for (double v : eig.values) pca.total_variance_ += std::max(v, 0.0);
    pca.components_ = Matrix(keep, d);
    pca.variance_.resize(keep);
    for (size_t j = 0; j < keep; ++j) {
      double lambda = std::max(eig.values[j], 0.0);
      pca.variance_[j] = lambda;
      if (lambda <= 0.0) continue;
      double norm = 1.0 / std::sqrt(lambda * static_cast<double>(n - 1));
      for (size_t i = 0; i < n; ++i) {
        double u = eig.vectors(i, j) * norm;
        if (u == 0.0) continue;
        const double* row = data.RowPtr(i);
        double* comp = pca.components_.RowPtr(j);
        for (size_t a = 0; a < d; ++a) {
          comp[a] += u * (row[a] - pca.mean_[a]);
        }
      }
    }
  }
  return pca;
}

double Pca::ExplainedVarianceRatio(size_t k) const {
  if (total_variance_ <= 0.0) return 0.0;
  k = std::min(k, variance_.size());
  double s = 0.0;
  for (size_t j = 0; j < k; ++j) s += variance_[j];
  return s / total_variance_;
}

Matrix Pca::Transform(const Matrix& data, size_t k) const {
  if (k == 0 || k > num_components()) k = num_components();
  MDS_CHECK(data.cols() == input_dim());
  Matrix out(data.rows(), k);
  for (size_t i = 0; i < data.rows(); ++i) {
    TransformPoint(data.RowPtr(i), k, out.RowPtr(i));
  }
  return out;
}

void Pca::TransformPoint(const double* point, size_t k, double* out) const {
  const size_t d = input_dim();
  for (size_t j = 0; j < k; ++j) {
    const double* comp = components_.RowPtr(j);
    double s = 0.0;
    for (size_t a = 0; a < d; ++a) s += comp[a] * (point[a] - mean_[a]);
    out[j] = s;
  }
}

std::vector<double> Pca::InverseTransformPoint(const double* coeffs,
                                               size_t k) const {
  const size_t d = input_dim();
  std::vector<double> out(mean_);
  for (size_t j = 0; j < k && j < num_components(); ++j) {
    const double* comp = components_.RowPtr(j);
    for (size_t a = 0; a < d; ++a) out[a] += coeffs[j] * comp[a];
  }
  return out;
}

}  // namespace mds
