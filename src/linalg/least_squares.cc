#include "linalg/least_squares.h"

#include <cmath>

namespace mds {

Result<std::vector<double>> SolveCholesky(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveCholesky: dimension mismatch");
  }
  // In-place lower-triangular Cholesky: A = L L^T.
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) {
      return Status::FailedPrecondition(
          "SolveCholesky: matrix not positive definite");
    }
    double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Forward solve L y = b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back solve L^T x = y.
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= a(k, i) * b[k];
    b[i] = s / a(i, i);
  }
  return b;
}

Result<std::vector<double>> FitLeastSquares(const Matrix& x,
                                            const std::vector<double>& y,
                                            double ridge) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  if (y.size() != n) {
    return Status::InvalidArgument("FitLeastSquares: y size mismatch");
  }
  if (n < p) {
    return Status::InvalidArgument(
        "FitLeastSquares: fewer rows than parameters");
  }
  // Normal equations: (X^T X + ridge I) beta = X^T y.
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.RowPtr(i);
    for (size_t a = 0; a < p; ++a) {
      xty[a] += row[a] * y[i];
      for (size_t b = a; b < p; ++b) xtx(a, b) += row[a] * row[b];
    }
  }
  for (size_t a = 0; a < p; ++a) {
    xtx(a, a) += ridge;
    for (size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
  }
  return SolveCholesky(std::move(xtx), std::move(xty));
}

size_t PolynomialTermCount(size_t dim, int degree) {
  switch (degree) {
    case 0:
      return 1;
    case 1:
      return 1 + dim;
    case 2:
      return 1 + dim + dim * (dim + 1) / 2;
    default:
      MDS_CHECK(false && "degree must be 0, 1 or 2");
      return 0;
  }
}

Matrix PolynomialDesign(const Matrix& points, int degree) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  Matrix out(n, PolynomialTermCount(d, degree));
  for (size_t i = 0; i < n; ++i) {
    const double* p = points.RowPtr(i);
    double* row = out.RowPtr(i);
    size_t c = 0;
    row[c++] = 1.0;
    if (degree >= 1) {
      for (size_t j = 0; j < d; ++j) row[c++] = p[j];
    }
    if (degree >= 2) {
      for (size_t j = 0; j < d; ++j)
        for (size_t k = j; k < d; ++k) row[c++] = p[j] * p[k];
    }
  }
  return out;
}

double EvaluatePolynomial(const std::vector<double>& coeffs,
                          const double* point, size_t dim, int degree) {
  MDS_CHECK(coeffs.size() == PolynomialTermCount(dim, degree));
  size_t c = 0;
  double acc = coeffs[c++];
  if (degree >= 1) {
    for (size_t j = 0; j < dim; ++j) acc += coeffs[c++] * point[j];
  }
  if (degree >= 2) {
    for (size_t j = 0; j < dim; ++j)
      for (size_t k = j; k < dim; ++k) acc += coeffs[c++] * point[j] * point[k];
  }
  return acc;
}

}  // namespace mds
