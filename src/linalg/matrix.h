#ifndef MDS_LINALG_MATRIX_H_
#define MDS_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace mds {

/// Dense row-major matrix of doubles. Small and dependency-free: the
/// library only needs modest dense linear algebra (normal equations for
/// local polynomial fits, covariance matrices, eigen decomposition for PCA
/// and whitening).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    MDS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    MDS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const double* RowPtr(size_t r) const { return &data_[r * cols_]; }
  double* RowPtr(size_t r) { return &data_[r * cols_]; }

  /// this * other; cols() must equal other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Transpose copy.
  Matrix Transposed() const;

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> Apply(const std::vector<double>& v) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mds

#endif  // MDS_LINALG_MATRIX_H_
