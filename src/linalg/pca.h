#ifndef MDS_LINALG_PCA_H_
#define MDS_LINALG_PCA_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace mds {

/// Principal component analysis (Karhunen–Loève transform).
///
/// The paper reduces 3000-dimensional SDSS spectra to their first 5
/// principal components (§4.2) and visualizes the first 3 principal
/// components of the magnitude table (§3.1/§5); this class provides both
/// transforms.
class Pca {
 public:
  /// Empty PCA; use Fit to obtain a usable instance.
  Pca() = default;

  /// Fits on n x d data. Keeps at most max_components (all if 0). For very
  /// wide data (d > n, e.g. spectra) the dual/Gram-matrix formulation is
  /// used so the eigenproblem stays n x n.
  static Result<Pca> Fit(const Matrix& data, size_t max_components = 0);

  size_t input_dim() const { return mean_.size(); }
  size_t num_components() const { return components_.rows(); }

  /// Per-component variance, descending.
  const std::vector<double>& explained_variance() const { return variance_; }

  /// Fraction of total variance captured by the first k components.
  double ExplainedVarianceRatio(size_t k) const;

  /// Row i of the result is the projection of row i of `data` onto the
  /// first `k` components (k <= num_components; 0 means all kept).
  Matrix Transform(const Matrix& data, size_t k = 0) const;

  /// Projects one point (length input_dim) to `out` (length k).
  void TransformPoint(const double* point, size_t k, double* out) const;

  /// Reconstructs from a k-dimensional projection back to input space.
  std::vector<double> InverseTransformPoint(const double* coeffs,
                                            size_t k) const;

  /// Component matrix: row j is the j-th unit principal direction.
  const Matrix& components() const { return components_; }
  const std::vector<double>& mean() const { return mean_; }

 private:

  std::vector<double> mean_;
  Matrix components_;  // num_components x input_dim
  std::vector<double> variance_;
  double total_variance_ = 0.0;
};

}  // namespace mds

#endif  // MDS_LINALG_PCA_H_
