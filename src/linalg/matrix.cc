#include "linalg/matrix.h"

namespace mds {

Matrix Matrix::Multiply(const Matrix& other) const {
  MDS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  MDS_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

}  // namespace mds
