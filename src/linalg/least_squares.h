#ifndef MDS_LINALG_LEAST_SQUARES_H_
#define MDS_LINALG_LEAST_SQUARES_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace mds {

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky decomposition. Fails with InvalidArgument if A is not square /
/// sized to b, and with FailedPrecondition if A is not positive definite
/// (up to a small ridge tolerance).
Result<std::vector<double>> SolveCholesky(Matrix a, std::vector<double> b);

/// Ordinary least squares: minimizes ||X beta - y||^2 through the normal
/// equations with a tiny ridge term for numerical safety. X is n x p with
/// n >= p. Returns the p coefficients.
///
/// This is the multi-parameter general least-squares fit the paper runs as
/// a CLR stored procedure (Numerical Recipes lfit) for the local polynomial
/// photometric-redshift estimator.
Result<std::vector<double>> FitLeastSquares(const Matrix& x,
                                            const std::vector<double>& y,
                                            double ridge = 1e-9);

/// Builds a polynomial design matrix of the given degree (0, 1 or 2) from
/// n x d input rows: column of ones, then the d linear terms, then (for
/// degree 2) all d*(d+1)/2 quadratic monomials.
Matrix PolynomialDesign(const Matrix& points, int degree);

/// Evaluates the polynomial with coefficients from FitLeastSquares over a
/// single d-dimensional point (same term ordering as PolynomialDesign).
double EvaluatePolynomial(const std::vector<double>& coeffs,
                          const double* point, size_t dim, int degree);

/// Number of coefficients of a degree-`degree` polynomial in `dim` variables
/// (degree in {0, 1, 2}).
size_t PolynomialTermCount(size_t dim, int degree);

}  // namespace mds

#endif  // MDS_LINALG_LEAST_SQUARES_H_
