#ifndef MDS_LINALG_WHITENING_H_
#define MDS_LINALG_WHITENING_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace mds {

/// Whitening transform: maps data so that its covariance becomes the
/// identity. §3.4 of the paper notes the Euclidean metric used for Voronoi
/// tessellation "after whitening should give correct results"; this class
/// is that preprocessing step.
class Whitening {
 public:
  /// Fits the ZCA whitening transform W = C^{-1/2} on n x d data, with a
  /// small eigenvalue floor for stability.
  static Result<Whitening> Fit(const Matrix& data, double eigen_floor = 1e-9);

  size_t dim() const { return mean_.size(); }

  /// Applies the transform to every row of `data`.
  Matrix Transform(const Matrix& data) const;

  /// Applies the transform to a single point in place.
  void TransformPoint(const double* in, double* out) const;

  /// Inverse transform (colorizes whitened data back).
  void InverseTransformPoint(const double* in, double* out) const;

 private:
  Whitening() = default;

  std::vector<double> mean_;
  Matrix forward_;  // d x d: W
  Matrix inverse_;  // d x d: W^{-1} = C^{1/2}
};

}  // namespace mds

#endif  // MDS_LINALG_WHITENING_H_
