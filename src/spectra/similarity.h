#ifndef MDS_SPECTRA_SIMILARITY_H_
#define MDS_SPECTRA_SIMILARITY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/kdtree.h"
#include "core/knn.h"
#include "geom/point_set.h"
#include "linalg/pca.h"
#include "spectra/spectrum_generator.h"

namespace mds {

/// Karhunen–Loève feature space for spectra (§4.2): "the first few
/// principal components ... is enough to describe most of the physical
/// characteristics". Fits a PCA on a training sample of spectra and
/// projects any spectrum to a `num_features`-dimensional feature vector —
/// indexing the 3000-dimensional spectrum space directly "would be
/// prohibitive".
class SpectralFeatureSpace {
 public:
  /// `training` holds spectra as rows (n x num_samples floats).
  static Result<SpectralFeatureSpace> Fit(const std::vector<std::vector<float>>& training,
                                          size_t num_features = 5);

  size_t num_features() const { return num_features_; }
  size_t spectrum_length() const { return pca_.input_dim(); }

  /// Variance captured by the kept components.
  double ExplainedVarianceRatio() const {
    return pca_.ExplainedVarianceRatio(num_features_);
  }

  /// Projects one spectrum to its feature vector.
  std::vector<float> Project(const std::vector<float>& spectrum) const;

  /// Reconstructs a spectrum from its features (for reconstruction-error
  /// tests).
  std::vector<float> Reconstruct(const std::vector<float>& features) const;

  const Pca& pca() const { return pca_; }

 private:
  SpectralFeatureSpace() = default;

  Pca pca_;
  size_t num_features_ = 5;
};

/// Nearest-neighbor similarity search over spectra through the shared
/// kd-tree machinery: "a similar index can be built and the same stored
/// procedures can be used for nearest neighbor searches as for the
/// magnitude space".
class SpectralSimilaritySearch {
 public:
  /// Builds the index over the feature projections of `archive`.
  static Result<SpectralSimilaritySearch> Build(
      const SpectralFeatureSpace* space,
      const std::vector<std::vector<float>>& archive);

  size_t size() const { return features_->size(); }

  /// Returns the archive indices of the k spectra most similar to `query`.
  std::vector<Neighbor> FindSimilar(const std::vector<float>& query,
                                    size_t k) const;

 private:
  SpectralSimilaritySearch() = default;

  const SpectralFeatureSpace* space_ = nullptr;
  std::unique_ptr<PointSet> features_;
  std::unique_ptr<KdTreeIndex> tree_;
};

}  // namespace mds

#endif  // MDS_SPECTRA_SIMILARITY_H_
