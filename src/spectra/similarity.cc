#include "spectra/similarity.h"

namespace mds {

Result<SpectralFeatureSpace> SpectralFeatureSpace::Fit(
    const std::vector<std::vector<float>>& training, size_t num_features) {
  if (training.size() < 2) {
    return Status::InvalidArgument(
        "SpectralFeatureSpace::Fit: need at least 2 spectra");
  }
  const size_t len = training[0].size();
  for (const auto& s : training) {
    if (s.size() != len) {
      return Status::InvalidArgument(
          "SpectralFeatureSpace::Fit: ragged spectra");
    }
  }
  Matrix data(training.size(), len);
  for (size_t i = 0; i < training.size(); ++i) {
    double* row = data.RowPtr(i);
    for (size_t j = 0; j < len; ++j) row[j] = training[i][j];
  }
  SpectralFeatureSpace space;
  space.num_features_ = num_features;
  MDS_ASSIGN_OR_RETURN(space.pca_, Pca::Fit(data, num_features));
  return space;
}

std::vector<float> SpectralFeatureSpace::Project(
    const std::vector<float>& spectrum) const {
  MDS_CHECK(spectrum.size() == pca_.input_dim());
  std::vector<double> in(spectrum.begin(), spectrum.end());
  std::vector<double> out(num_features_);
  pca_.TransformPoint(in.data(), num_features_, out.data());
  return std::vector<float>(out.begin(), out.end());
}

std::vector<float> SpectralFeatureSpace::Reconstruct(
    const std::vector<float>& features) const {
  std::vector<double> in(features.begin(), features.end());
  std::vector<double> out = pca_.InverseTransformPoint(in.data(), in.size());
  return std::vector<float>(out.begin(), out.end());
}

Result<SpectralSimilaritySearch> SpectralSimilaritySearch::Build(
    const SpectralFeatureSpace* space,
    const std::vector<std::vector<float>>& archive) {
  if (archive.empty()) {
    return Status::InvalidArgument("SpectralSimilaritySearch: empty archive");
  }
  SpectralSimilaritySearch search;
  search.space_ = space;
  search.features_ =
      std::make_unique<PointSet>(space->num_features(), 0);
  search.features_->Reserve(archive.size());
  for (const auto& spectrum : archive) {
    std::vector<float> f = space->Project(spectrum);
    search.features_->Append(f.data());
  }
  MDS_ASSIGN_OR_RETURN(
      KdTreeIndex tree,
      KdTreeIndex::Build(search.features_.get(), KdTreeConfig{}));
  search.tree_ = std::make_unique<KdTreeIndex>(std::move(tree));
  return search;
}

std::vector<Neighbor> SpectralSimilaritySearch::FindSimilar(
    const std::vector<float>& query, size_t k) const {
  std::vector<float> f = space_->Project(query);
  KdKnnSearcher searcher(tree_.get());
  return searcher.BoundaryGrow(f.data(), k);
}

}  // namespace mds
