#include "spectra/spectrum_generator.h"

#include <cmath>

namespace mds {

namespace {

struct Line {
  double center = 0.0;    // rest-frame Angstrom
  double width = 8.0;     // Gaussian sigma, Angstrom
  double strength = 0.0;  // positive = emission, negative = absorption
};

// Standard rest wavelengths: CaII K/H, [OII], Hbeta, [OIII], Mg, Na, Halpha.
constexpr double kCaK = 3933.7, kCaH = 3968.5, kOII = 3727.1, kHb = 4861.3,
                 kOIII = 5006.8, kMg = 5175.4, kNa = 5893.0, kHa = 6562.8;

void AppendClassLines(const SpectrumParams& p, std::vector<Line>* lines) {
  const double m = 0.5 + p.metallicity;  // metallicity scales absorption
  switch (p.cls) {
    case SpectrumClass::kElliptical:
      lines->push_back({kCaK, 10.0, -0.45 * m});
      lines->push_back({kCaH, 10.0, -0.40 * m});
      lines->push_back({kMg, 14.0, -0.30 * m});
      lines->push_back({kNa, 10.0, -0.22 * m});
      lines->push_back({kHb, 8.0, -0.12 * m});
      break;
    case SpectrumClass::kSpiral:
      lines->push_back({kCaK, 10.0, -0.20 * m});
      lines->push_back({kCaH, 10.0, -0.18 * m});
      lines->push_back({kMg, 14.0, -0.12 * m});
      lines->push_back({kHa, 9.0, 0.35});
      lines->push_back({kOII, 8.0, 0.15});
      break;
    case SpectrumClass::kStarburst:
      lines->push_back({kOII, 8.0, 0.8});
      lines->push_back({kHb, 8.0, 0.6});
      lines->push_back({kOIII, 8.0, 1.1});
      lines->push_back({kHa, 9.0, 1.6});
      break;
    case SpectrumClass::kQuasar:
      // Broad lines: the defining quasar signature.
      lines->push_back({kHb, 60.0, 0.9});
      lines->push_back({kHa, 70.0, 1.4});
      lines->push_back({4102.0, 55.0, 0.4});  // Hdelta broad
      lines->push_back({kOIII, 10.0, 0.5});   // narrow component
      break;
  }
}

double ContinuumSlope(const SpectrumParams& p) {
  // Spectral index alpha in f ~ (lambda/5000)^alpha: older and dustier
  // populations are redder (positive slope), starbursts and quasars bluer.
  switch (p.cls) {
    case SpectrumClass::kElliptical:
      return 0.8 + 1.2 * p.age + 0.8 * p.dust;
    case SpectrumClass::kSpiral:
      return 0.0 + 1.0 * p.age + 0.8 * p.dust;
    case SpectrumClass::kStarburst:
      return -1.2 + 0.6 * p.age + 0.8 * p.dust;
    case SpectrumClass::kQuasar:
      return -0.7 + 0.3 * p.age + 0.5 * p.dust;
  }
  return 0.0;
}

}  // namespace

std::vector<float> SpectrumGenerator::Generate(
    const SpectrumParams& params) const {
  const size_t n = grid_.num_samples;
  std::vector<float> flux(n);
  std::vector<Line> lines;
  AppendClassLines(params, &lines);
  const double alpha = ContinuumSlope(params);
  const double zfac = 1.0 + params.redshift;
  // The 4000A break: a continuum step that redshifts through the grid and
  // carries most of the redshift information.
  const double break_depth =
      params.cls == SpectrumClass::kQuasar ? 0.08 : 0.25 + 0.3 * params.age;

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double lambda_obs =
        grid_.lambda_min + (grid_.lambda_max - grid_.lambda_min) *
                               static_cast<double>(i) /
                               static_cast<double>(n - 1);
    double lambda_rest = lambda_obs / zfac;
    double f = std::pow(lambda_rest / 5000.0, alpha);
    // Smooth 4000A break.
    f *= 1.0 - break_depth / (1.0 + std::exp((lambda_rest - 4000.0) / 60.0));
    for (const Line& line : lines) {
      double u = (lambda_rest - line.center) / line.width;
      if (std::abs(u) < 6.0) {
        f += line.strength * std::exp(-0.5 * u * u);
      }
    }
    f = std::max(f, 0.0);
    flux[i] = static_cast<float>(f);
    total += f;
  }
  // Normalize to unit mean flux (spectra are compared in shape space).
  double scale = total > 0.0 ? static_cast<double>(n) / total : 1.0;
  for (float& f : flux) f = static_cast<float>(f * scale);
  return flux;
}

std::vector<float> SpectrumGenerator::GenerateNoisy(
    const SpectrumParams& params, double noise_sigma, Rng& rng) const {
  std::vector<float> flux = Generate(params);
  for (float& f : flux) {
    f = static_cast<float>(
        std::max(0.0, f * (1.0 + noise_sigma * rng.NextGaussian())));
  }
  return flux;
}

SpectrumParams SpectrumGenerator::RandomParams(SpectrumClass cls,
                                               Rng& rng) const {
  SpectrumParams p;
  p.cls = cls;
  p.age = rng.NextDouble();
  p.metallicity = rng.NextDouble();
  p.dust = 0.5 * rng.NextDouble();
  switch (cls) {
    case SpectrumClass::kQuasar:
      p.redshift = rng.NextUniform(0.1, 0.45);
      break;
    default:
      p.redshift = rng.NextUniform(0.0, 0.25);
      break;
  }
  return p;
}

}  // namespace mds
