#ifndef MDS_SPECTRA_SPECTRUM_GENERATOR_H_
#define MDS_SPECTRA_SPECTRUM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mds {

/// Object families with distinct spectral shapes (§4.2, Figures 9–10).
enum class SpectrumClass : uint8_t {
  kElliptical = 0,  ///< red continuum, deep absorption lines
  kSpiral = 1,      ///< intermediate continuum, mild emission
  kStarburst = 2,   ///< blue continuum, strong narrow emission
  kQuasar = 3,      ///< power-law continuum, broad emission lines
};

inline constexpr size_t kNumSpectrumClasses = 4;

/// Physical parameters of a synthetic spectrum — the knobs a
/// Bruzual–Charlot-style synthesis code exposes ("tweaking the age,
/// chemical composition, dust content and other physical parameters").
struct SpectrumParams {
  SpectrumClass cls = SpectrumClass::kElliptical;
  double redshift = 0.0;
  double age = 0.5;          ///< [0, 1]: reddens the continuum
  double metallicity = 0.5;  ///< [0, 1]: scales absorption line depths
  double dust = 0.0;         ///< [0, 1]: extra reddening attenuation
};

/// Sampling grid of the spectrograph.
struct SpectrumGrid {
  size_t num_samples = 3000;  ///< SDSS spectra have ~3000 samples
  double lambda_min = 3800.0; ///< Angstrom
  double lambda_max = 9200.0;
};

/// Generates synthetic galaxy/quasar/star-formation spectra: a smooth
/// continuum shaped by age/dust plus Gaussian emission and absorption
/// lines at standard rest wavelengths, redshifted onto the observed grid.
/// This substitutes the SDSS SpectrumService archive (see DESIGN.md): the
/// §4.2 experiments only require that spectra live on a low-dimensional
/// manifold parameterized by physical knobs, which this family provides by
/// construction.
class SpectrumGenerator {
 public:
  explicit SpectrumGenerator(const SpectrumGrid& grid = {}) : grid_(grid) {}

  const SpectrumGrid& grid() const { return grid_; }

  /// Noise-free spectrum for the given parameters (length num_samples,
  /// normalized to unit mean flux).
  std::vector<float> Generate(const SpectrumParams& params) const;

  /// Spectrum with multiplicative pixel noise of the given amplitude.
  std::vector<float> GenerateNoisy(const SpectrumParams& params,
                                   double noise_sigma, Rng& rng) const;

  /// Draws random parameters for a class (redshift, age, metallicity,
  /// dust ranges chosen per class).
  SpectrumParams RandomParams(SpectrumClass cls, Rng& rng) const;

 private:
  SpectrumGrid grid_;
};

}  // namespace mds

#endif  // MDS_SPECTRA_SPECTRUM_GENERATOR_H_
