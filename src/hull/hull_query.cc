#include "hull/hull_query.h"

namespace mds {

Result<Polyhedron> ConvexHullPolyhedron(const std::vector<double>& points,
                                        size_t dim, double margin,
                                        const QuickhullOptions& options) {
  MDS_ASSIGN_OR_RETURN(ConvexHull hull,
                       ComputeConvexHull(points, dim, options));
  Polyhedron poly(dim);
  for (const HullFacet& facet : hull.facets) {
    poly.AddHalfspace(facet.normal, facet.offset + margin);
  }
  return poly;
}

Result<Polyhedron> ConvexHullPolyhedron(const PointSet& points,
                                        const std::vector<uint64_t>& ids,
                                        double margin,
                                        const QuickhullOptions& options) {
  const size_t d = points.dim();
  std::vector<double> coords;
  coords.reserve(ids.size() * d);
  for (uint64_t id : ids) {
    const float* p = points.point(id);
    for (size_t j = 0; j < d; ++j) coords.push_back(p[j]);
  }
  return ConvexHullPolyhedron(coords, d, margin, options);
}

}  // namespace mds
