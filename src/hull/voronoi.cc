#include "hull/voronoi.h"

#include <algorithm>
#include <cmath>

namespace mds {

VoronoiDiagram::VoronoiDiagram(const DelaunayTriangulation* delaunay,
                               const std::vector<double>* seeds)
    : delaunay_(delaunay), seeds_(seeds) {}

VoronoiCellStats VoronoiDiagram::CellStats(uint32_t seed) const {
  VoronoiCellStats stats;
  stats.num_neighbors =
      static_cast<uint32_t>(delaunay_->seed_graph()[seed].size());
  stats.num_vertices =
      static_cast<uint32_t>(delaunay_->incident_simplices()[seed].size());
  stats.bounded = delaunay_->on_hull()[seed] == 0;
  return stats;
}

std::vector<std::vector<double>> VoronoiDiagram::CellVertices(
    uint32_t seed) const {
  std::vector<std::vector<double>> out;
  for (uint32_t sid : delaunay_->incident_simplices()[seed]) {
    out.push_back(delaunay_->simplices()[sid].circumcenter);
  }
  return out;
}

Result<double> VoronoiDiagram::CellArea2D(uint32_t seed) const {
  if (dim() != 2) {
    return Status::InvalidArgument("CellArea2D: diagram is not 2-D");
  }
  if (delaunay_->on_hull()[seed]) {
    return Status::FailedPrecondition("CellArea2D: cell is unbounded");
  }
  std::vector<std::vector<double>> verts = CellVertices(seed);
  if (verts.size() < 3) {
    return Status::FailedPrecondition("CellArea2D: degenerate cell");
  }
  const double sx = (*seeds_)[seed * 2];
  const double sy = (*seeds_)[seed * 2 + 1];
  std::sort(verts.begin(), verts.end(),
            [&](const std::vector<double>& a, const std::vector<double>& b) {
              return std::atan2(a[1] - sy, a[0] - sx) <
                     std::atan2(b[1] - sy, b[0] - sx);
            });
  double area = 0.0;
  for (size_t i = 0; i < verts.size(); ++i) {
    const auto& a = verts[i];
    const auto& b = verts[(i + 1) % verts.size()];
    area += a[0] * b[1] - b[0] * a[1];
  }
  return std::abs(area) * 0.5;
}

}  // namespace mds
