#ifndef MDS_HULL_DELAUNAY_H_
#define MDS_HULL_DELAUNAY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "hull/quickhull.h"

namespace mds {

/// One Delaunay simplex (d+1 seed indices) with its circumsphere.
struct DelaunaySimplex {
  std::vector<uint32_t> vertices;
  std::vector<double> circumcenter;  ///< = a Voronoi vertex of the dual
  double circumradius2 = 0.0;
};

/// Delaunay triangulation of n seed points in d dimensions, computed by the
/// lifting transform: points are mapped to the paraboloid
/// (x, |x|^2) in d+1 dimensions, the convex hull is taken with Quickhull,
/// and the downward-facing facets project to the Delaunay simplices — the
/// same construction QHull performs for the paper (§3.4).
class DelaunayTriangulation {
 public:
  /// seeds: n x d row-major coordinates.
  static Result<DelaunayTriangulation> Compute(
      const std::vector<double>& seeds, size_t dim,
      const QuickhullOptions& options = {});

  size_t dim() const { return dim_; }
  size_t num_seeds() const { return num_seeds_; }
  const std::vector<DelaunaySimplex>& simplices() const { return simplices_; }

  /// The Delaunay graph (§3.4): adjacency lists per seed, sorted, unique.
  /// Two seeds are connected iff their Voronoi cells share a face.
  const std::vector<std::vector<uint32_t>>& seed_graph() const {
    return graph_;
  }

  /// Simplices incident to each seed; the circumcenters of these simplices
  /// are the vertices of the seed's Voronoi cell.
  const std::vector<std::vector<uint32_t>>& incident_simplices() const {
    return incident_;
  }

  /// True for seeds on the convex hull of the seed set; their Voronoi
  /// cells are unbounded.
  const std::vector<char>& on_hull() const { return on_hull_; }

 private:
  DelaunayTriangulation() = default;

  size_t dim_ = 0;
  size_t num_seeds_ = 0;
  std::vector<DelaunaySimplex> simplices_;
  std::vector<std::vector<uint32_t>> graph_;
  std::vector<std::vector<uint32_t>> incident_;
  std::vector<char> on_hull_;
};

/// Circumcenter of the simplex with vertex coordinates `verts` (d+1 rows of
/// d columns). Fails if the simplex is degenerate.
Result<std::vector<double>> Circumcenter(const std::vector<double>& verts,
                                         size_t dim);

}  // namespace mds

#endif  // MDS_HULL_DELAUNAY_H_
