#ifndef MDS_HULL_HULL_QUERY_H_
#define MDS_HULL_HULL_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/point_set.h"
#include "geom/polyhedron.h"
#include "hull/quickhull.h"

namespace mds {

/// Builds the H-representation of the convex hull of a training set —
/// the §2.2 "finding similar objects with drawing a convex hull around the
/// training set" query: every hull facet becomes one halfspace, and the
/// resulting Polyhedron can be evaluated by any of the spatial indexes.
///
/// `margin` inflates the hull outward by that distance along each facet
/// normal (a margin of 0 returns the tight hull; training points on the
/// boundary remain inside either way).
Result<Polyhedron> ConvexHullPolyhedron(const std::vector<double>& points,
                                        size_t dim, double margin = 0.0,
                                        const QuickhullOptions& options = {});

/// Convenience overload: hull of the selected rows of a PointSet.
Result<Polyhedron> ConvexHullPolyhedron(const PointSet& points,
                                        const std::vector<uint64_t>& ids,
                                        double margin = 0.0,
                                        const QuickhullOptions& options = {});

}  // namespace mds

#endif  // MDS_HULL_HULL_QUERY_H_
