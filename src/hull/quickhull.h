#ifndef MDS_HULL_QUICKHULL_H_
#define MDS_HULL_QUICKHULL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mds {

/// Options for the convex hull computation.
struct QuickhullOptions {
  /// Numeric thickness of facet planes; 0 picks an automatic tolerance
  /// scaled to the input extent.
  double epsilon = 0.0;
  /// On degenerate input (affinely dependent / cospherical points) retry
  /// with a tiny deterministic perturbation, the qhull "joggle" option.
  bool joggle = true;
  uint64_t joggle_seed = 0x70661e;
  /// Perturbation magnitude relative to the data extent.
  double joggle_scale = 1e-9;
  int max_joggle_retries = 8;
};

/// One facet of a d-dimensional convex hull.
struct HullFacet {
  /// d vertex indices into the input point array.
  std::vector<uint32_t> vertices;
  /// Outward unit normal and offset: normal . x <= offset for hull points.
  std::vector<double> normal;
  double offset = 0.0;
  /// Indices of the d adjacent facets (across each ridge).
  std::vector<uint32_t> neighbors;
};

/// Result of a convex hull computation.
struct ConvexHull {
  size_t dim = 0;
  std::vector<HullFacet> facets;
  /// Deduplicated indices of input points on the hull.
  std::vector<uint32_t> hull_vertices;
};

/// Computes the convex hull of n points in d dimensions (row-major doubles)
/// with the Quickhull algorithm [Barber, Dobkin, Huhdanpaa 1996] — the
/// method of the QHull library the paper uses for its 5-D tessellation
/// (§3.4), reimplemented here for arbitrary dimension.
///
/// Requires n >= d+1 affinely independent points; flat input fails with
/// FailedPrecondition unless options.joggle is set (the default), in which
/// case the input is perturbed deterministically and retried.
Result<ConvexHull> ComputeConvexHull(const std::vector<double>& points,
                                     size_t dim,
                                     const QuickhullOptions& options = {});

}  // namespace mds

#endif  // MDS_HULL_QUICKHULL_H_
