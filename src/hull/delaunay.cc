#include "hull/delaunay.h"

#include <algorithm>
#include <cmath>

namespace mds {

Result<std::vector<double>> Circumcenter(const std::vector<double>& verts,
                                         size_t dim) {
  const size_t d = dim;
  if (verts.size() != (d + 1) * d) {
    return Status::InvalidArgument("Circumcenter: bad vertex array");
  }
  // Equidistance conditions: 2 (v_i - v_0) . c = |v_i|^2 - |v_0|^2.
  // Solve the d x d system with Gaussian elimination + partial pivoting.
  std::vector<double> a(d * (d + 1));  // augmented
  const double* v0 = verts.data();
  double v0sq = 0.0;
  for (size_t j = 0; j < d; ++j) v0sq += v0[j] * v0[j];
  for (size_t i = 0; i < d; ++i) {
    const double* vi = verts.data() + (i + 1) * d;
    double visq = 0.0;
    for (size_t j = 0; j < d; ++j) {
      a[i * (d + 1) + j] = 2.0 * (vi[j] - v0[j]);
      visq += vi[j] * vi[j];
    }
    a[i * (d + 1) + d] = visq - v0sq;
  }
  for (size_t col = 0; col < d; ++col) {
    size_t piv = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r * (d + 1) + col]) > std::abs(a[piv * (d + 1) + col])) {
        piv = r;
      }
    }
    if (std::abs(a[piv * (d + 1) + col]) < 1e-300) {
      return Status::FailedPrecondition("Circumcenter: degenerate simplex");
    }
    if (piv != col) {
      for (size_t j = col; j <= d; ++j) {
        std::swap(a[piv * (d + 1) + j], a[col * (d + 1) + j]);
      }
    }
    double diag = a[col * (d + 1) + col];
    for (size_t r = 0; r < d; ++r) {
      if (r == col) continue;
      double factor = a[r * (d + 1) + col] / diag;
      if (factor == 0.0) continue;
      for (size_t j = col; j <= d; ++j) {
        a[r * (d + 1) + j] -= factor * a[col * (d + 1) + j];
      }
    }
  }
  std::vector<double> c(d);
  for (size_t i = 0; i < d; ++i) {
    c[i] = a[i * (d + 1) + d] / a[i * (d + 1) + i];
  }
  return c;
}

Result<DelaunayTriangulation> DelaunayTriangulation::Compute(
    const std::vector<double>& seeds, size_t dim,
    const QuickhullOptions& options) {
  if (dim == 0 || seeds.size() % dim != 0) {
    return Status::InvalidArgument("Delaunay: bad seed array");
  }
  const size_t n = seeds.size() / dim;
  if (n < dim + 2) {
    return Status::InvalidArgument("Delaunay: need at least d+2 seeds");
  }
  // Lift to the paraboloid in d+1 dimensions.
  const size_t ld = dim + 1;
  std::vector<double> lifted(n * ld);
  for (size_t i = 0; i < n; ++i) {
    double sq = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      double x = seeds[i * dim + j];
      lifted[i * ld + j] = x;
      sq += x * x;
    }
    lifted[i * ld + dim] = sq;
  }
  MDS_ASSIGN_OR_RETURN(ConvexHull hull,
                       ComputeConvexHull(lifted, ld, options));

  DelaunayTriangulation tri;
  tri.dim_ = dim;
  tri.num_seeds_ = n;
  tri.on_hull_.assign(n, 0);
  tri.incident_.resize(n);
  tri.graph_.resize(n);

  std::vector<double> simplex_coords((dim + 1) * dim);
  for (const HullFacet& facet : hull.facets) {
    if (facet.normal[dim] < 0.0) {
      // Downward facet: a Delaunay simplex.
      DelaunaySimplex simplex;
      simplex.vertices = facet.vertices;
      for (size_t i = 0; i <= dim; ++i) {
        const double* src = seeds.data() + facet.vertices[i] * dim;
        std::copy(src, src + dim, simplex_coords.begin() + i * dim);
      }
      Result<std::vector<double>> cc = Circumcenter(simplex_coords, dim);
      if (cc.ok()) {
        simplex.circumcenter = std::move(*cc);
        const double* v0 = seeds.data() + facet.vertices[0] * dim;
        double r2 = 0.0;
        for (size_t j = 0; j < dim; ++j) {
          double diff = simplex.circumcenter[j] - v0[j];
          r2 += diff * diff;
        }
        simplex.circumradius2 = r2;
      } else {
        // Nearly flat simplex after joggling: fall back to the centroid so
        // downstream consumers still have a representative vertex.
        simplex.circumcenter.assign(dim, 0.0);
        for (size_t i = 0; i <= dim; ++i) {
          for (size_t j = 0; j < dim; ++j) {
            simplex.circumcenter[j] += simplex_coords[i * dim + j];
          }
        }
        for (double& x : simplex.circumcenter) {
          x /= static_cast<double>(dim + 1);
        }
        simplex.circumradius2 = 0.0;
      }
      uint32_t sid = static_cast<uint32_t>(tri.simplices_.size());
      for (uint32_t v : simplex.vertices) tri.incident_[v].push_back(sid);
      for (size_t i = 0; i < simplex.vertices.size(); ++i) {
        for (size_t j = i + 1; j < simplex.vertices.size(); ++j) {
          tri.graph_[simplex.vertices[i]].push_back(simplex.vertices[j]);
          tri.graph_[simplex.vertices[j]].push_back(simplex.vertices[i]);
        }
      }
      tri.simplices_.push_back(std::move(simplex));
    } else {
      // Upward facet: its vertices lie on the convex hull of the seeds,
      // so their Voronoi cells are unbounded.
      for (uint32_t v : facet.vertices) tri.on_hull_[v] = 1;
    }
  }
  if (tri.simplices_.empty()) {
    return Status::Internal("Delaunay: no downward facets found");
  }
  for (auto& adjacency : tri.graph_) {
    std::sort(adjacency.begin(), adjacency.end());
    adjacency.erase(std::unique(adjacency.begin(), adjacency.end()),
                    adjacency.end());
  }
  return tri;
}

}  // namespace mds
