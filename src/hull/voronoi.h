#ifndef MDS_HULL_VORONOI_H_
#define MDS_HULL_VORONOI_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "hull/delaunay.h"

namespace mds {

/// Shape statistics of one Voronoi cell — the quantities behind the §3.4
/// "roundness" observation (5-D cells have ~10^3 vertices and ~50
/// neighbors, vs 32 corners and 10 faces for 5-D hyper-rectangles).
struct VoronoiCellStats {
  uint32_t num_neighbors = 0;  ///< faces: adjacent cells in the Delaunay graph
  uint32_t num_vertices = 0;   ///< circumcenters of incident simplices
  bool bounded = false;        ///< false for seeds on the seed-set hull
};

/// Voronoi diagram of a seed set, represented through its Delaunay dual
/// (cells are never materialized as explicit polytopes; the paper stores
/// the same dual form, noting the full 5-D cell geometry "takes much more
/// space to store").
class VoronoiDiagram {
 public:
  /// `delaunay` and `seeds` must outlive the diagram.
  VoronoiDiagram(const DelaunayTriangulation* delaunay,
                 const std::vector<double>* seeds);

  size_t dim() const { return delaunay_->dim(); }
  size_t num_cells() const { return delaunay_->num_seeds(); }

  VoronoiCellStats CellStats(uint32_t seed) const;

  /// Voronoi vertices of a cell: the circumcenters of the seed's incident
  /// Delaunay simplices.
  std::vector<std::vector<double>> CellVertices(uint32_t seed) const;

  /// Exact area of a bounded 2-D Voronoi cell (circumcenters sorted by
  /// angle, shoelace formula). Fails for unbounded cells or dim != 2; the
  /// general-dimension path is Monte-Carlo volume estimation in
  /// core/voronoi_index (see DESIGN.md substitution table).
  Result<double> CellArea2D(uint32_t seed) const;

  const DelaunayTriangulation& delaunay() const { return *delaunay_; }

 private:
  const DelaunayTriangulation* delaunay_;
  const std::vector<double>* seeds_;
};

}  // namespace mds

#endif  // MDS_HULL_VORONOI_H_
