#include "hull/quickhull.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace mds {

namespace {

// Working facet with bookkeeping fields (trimmed away in the output).
struct Facet {
  std::vector<uint32_t> vertices;  // sorted, size d
  std::vector<double> normal;
  double offset = 0.0;
  std::vector<uint32_t> neighbors;
  std::vector<uint32_t> outside;
  double furthest_dist = 0.0;
  uint32_t furthest = 0;
  bool alive = false;
  uint64_t visit_epoch = 0;
  bool visible = false;
};

struct RidgeKeyHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

class QuickhullImpl {
 public:
  QuickhullImpl(const double* pts, size_t n, size_t d, double eps)
      : pts_(pts),
        n_(n),
        d_(d),
        eps_(eps),
        // Visibility/outside threshold: much tighter than the degeneracy
        // tolerance. A coarse threshold here disconnects the true visible
        // region on nearly-coplanar facet fans (dense clustered input) and
        // silently drops hull points; facet-creation degeneracy is guarded
        // separately by eps_.
        vis_eps_(eps * 1e-3) {}

  Status Run();
  ConvexHull TakeResult();

 private:
  const double* P(uint32_t i) const { return pts_ + i * d_; }

  double Dot(const double* a, const double* b) const {
    double s = 0.0;
    for (size_t j = 0; j < d_; ++j) s += a[j] * b[j];
    return s;
  }

  double SignedDist(const Facet& f, uint32_t p) const {
    return Dot(f.normal.data(), P(p)) - f.offset;
  }

  /// Computes the oriented supporting plane of f from its vertices;
  /// fails if the vertices are affinely dependent.
  Status ComputePlane(Facet* f);

  Status BuildInitialSimplex();
  Result<bool> AddApex(uint32_t base_facet);
  bool ReinsertEscapedPoints();

  uint32_t NewFacet();
  void FreeFacet(uint32_t id);

  const double* pts_;
  size_t n_;
  size_t d_;
  double eps_;
  double vis_eps_;

  std::vector<Facet> facets_;
  std::vector<uint32_t> free_list_;
  std::vector<uint32_t> pending_;  // facets with outside points to process
  std::vector<double> interior_;
  uint64_t epoch_ = 0;

  // Scratch buffers reused across AddApex calls.
  std::vector<uint32_t> visible_;
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> horizon_;
  std::vector<uint32_t> orphan_points_;
  std::vector<char> banned_;
};

Status QuickhullImpl::ComputePlane(Facet* f) {
  const size_t d = d_;
  // Orthonormal basis of the facet's direction space via modified
  // Gram-Schmidt on the edge vectors from vertex 0.
  std::vector<double> basis((d - 1) * d);
  size_t rank = 0;
  const double* v0 = P(f->vertices[0]);
  for (size_t i = 1; i < d; ++i) {
    double* b = &basis[rank * d];
    const double* vi = P(f->vertices[i]);
    for (size_t j = 0; j < d; ++j) b[j] = vi[j] - v0[j];
    for (size_t r = 0; r < rank; ++r) {
      const double* br = &basis[r * d];
      double proj = Dot(b, br);
      for (size_t j = 0; j < d; ++j) b[j] -= proj * br[j];
    }
    double norm = std::sqrt(Dot(b, b));
    if (norm <= eps_) {
      return Status::FailedPrecondition("quickhull: degenerate facet");
    }
    for (size_t j = 0; j < d; ++j) b[j] /= norm;
    ++rank;
  }
  // The normal: the coordinate axis with the largest residual after
  // projecting out the facet directions, normalized.
  std::vector<double> best(d), residual(d);
  double best_norm = -1.0;
  for (size_t k = 0; k < d; ++k) {
    for (size_t j = 0; j < d; ++j) residual[j] = (j == k) ? 1.0 : 0.0;
    for (size_t r = 0; r < rank; ++r) {
      const double* br = &basis[r * d];
      double proj = residual[k] * br[k];
      // Full projection: residual starts as e_k, so the dot is just br[k],
      // but after the first subtraction residual is general; recompute.
      proj = Dot(residual.data(), br);
      for (size_t j = 0; j < d; ++j) residual[j] -= proj * br[j];
    }
    double norm = std::sqrt(Dot(residual.data(), residual.data()));
    if (norm > best_norm) {
      best_norm = norm;
      best = residual;
    }
  }
  if (best_norm <= eps_) {
    return Status::FailedPrecondition("quickhull: degenerate facet normal");
  }
  for (double& x : best) x /= best_norm;
  // Offset: average over vertices for numeric robustness.
  double offset = 0.0;
  for (uint32_t v : f->vertices) offset += Dot(best.data(), P(v));
  offset /= static_cast<double>(d);
  // Orient away from the interior point.
  double side = Dot(best.data(), interior_.data()) - offset;
  if (side > 0.0) {
    for (double& x : best) x = -x;
    offset = -offset;
  }
  f->normal = std::move(best);
  f->offset = offset;
  return Status::OK();
}

uint32_t QuickhullImpl::NewFacet() {
  uint32_t id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<uint32_t>(facets_.size());
    facets_.emplace_back();
  }
  Facet& f = facets_[id];
  f.vertices.clear();
  f.normal.clear();
  f.neighbors.clear();
  f.outside.clear();
  f.furthest_dist = 0.0;
  f.alive = true;
  f.visible = false;
  f.visit_epoch = 0;
  return id;
}

void QuickhullImpl::FreeFacet(uint32_t id) {
  facets_[id].alive = false;
  facets_[id].outside.clear();
  free_list_.push_back(id);
}

Status QuickhullImpl::BuildInitialSimplex() {
  const size_t d = d_;
  if (n_ < d + 1) {
    return Status::InvalidArgument("quickhull: need at least d+1 points");
  }
  // Candidate extremes: min/max along each axis.
  std::vector<uint32_t> candidates;
  for (size_t j = 0; j < d; ++j) {
    uint32_t lo = 0, hi = 0;
    for (uint32_t i = 1; i < n_; ++i) {
      if (P(i)[j] < P(lo)[j]) lo = i;
      if (P(i)[j] > P(hi)[j]) hi = i;
    }
    candidates.push_back(lo);
    candidates.push_back(hi);
  }
  // Farthest candidate pair seeds the simplex.
  uint32_t a = candidates[0], b = candidates[1];
  double best = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      double s = 0.0;
      for (size_t t = 0; t < d; ++t) {
        double diff = P(candidates[i])[t] - P(candidates[j])[t];
        s += diff * diff;
      }
      if (s > best) {
        best = s;
        a = candidates[i];
        b = candidates[j];
      }
    }
  }
  if (best <= eps_ * eps_) {
    return Status::FailedPrecondition("quickhull: all points coincide");
  }
  std::vector<uint32_t> simplex = {a, b};
  // Orthonormal basis of the current affine span.
  std::vector<double> basis;
  {
    std::vector<double> e(d);
    for (size_t j = 0; j < d; ++j) e[j] = P(b)[j] - P(a)[j];
    double norm = std::sqrt(Dot(e.data(), e.data()));
    for (size_t j = 0; j < d; ++j) e[j] /= norm;
    basis.insert(basis.end(), e.begin(), e.end());
  }
  std::vector<double> r(d);
  while (simplex.size() < d + 1) {
    // Farthest point from the current affine subspace.
    uint32_t far = 0;
    double far_dist = -1.0;
    const size_t rank = basis.size() / d;
    for (uint32_t i = 0; i < n_; ++i) {
      for (size_t j = 0; j < d; ++j) r[j] = P(i)[j] - P(a)[j];
      for (size_t k = 0; k < rank; ++k) {
        const double* bk = &basis[k * d];
        double proj = Dot(r.data(), bk);
        for (size_t j = 0; j < d; ++j) r[j] -= proj * bk[j];
      }
      double dist = std::sqrt(Dot(r.data(), r.data()));
      if (dist > far_dist) {
        far_dist = dist;
        far = i;
      }
    }
    if (far_dist <= eps_) {
      return Status::FailedPrecondition(
          "quickhull: points are affinely dependent (flat input)");
    }
    simplex.push_back(far);
    for (size_t j = 0; j < d; ++j) r[j] = P(far)[j] - P(a)[j];
    for (size_t k = 0; k < rank; ++k) {
      const double* bk = &basis[k * d];
      double proj = Dot(r.data(), bk);
      for (size_t j = 0; j < d; ++j) r[j] -= proj * bk[j];
    }
    double norm = std::sqrt(Dot(r.data(), r.data()));
    for (size_t j = 0; j < d; ++j) r[j] /= norm;
    basis.insert(basis.end(), r.begin(), r.end());
  }

  interior_.assign(d, 0.0);
  for (uint32_t v : simplex) {
    for (size_t j = 0; j < d; ++j) interior_[j] += P(v)[j];
  }
  for (size_t j = 0; j < d; ++j) interior_[j] /= static_cast<double>(d + 1);

  // One facet per omitted simplex vertex; all pairs are neighbors.
  std::vector<uint32_t> ids;
  for (size_t omit = 0; omit < d + 1; ++omit) {
    uint32_t id = NewFacet();
    Facet& f = facets_[id];
    for (size_t i = 0; i < d + 1; ++i) {
      if (i != omit) f.vertices.push_back(simplex[i]);
    }
    std::sort(f.vertices.begin(), f.vertices.end());
    MDS_RETURN_NOT_OK(ComputePlane(&f));
    ids.push_back(id);
  }
  for (uint32_t id : ids) {
    for (uint32_t other : ids) {
      if (other != id) facets_[id].neighbors.push_back(other);
    }
  }
  // Distribute the remaining points to outside sets.
  std::vector<char> in_simplex(n_, 0);
  for (uint32_t v : simplex) in_simplex[v] = 1;
  for (uint32_t i = 0; i < n_; ++i) {
    if (in_simplex[i]) continue;
    for (uint32_t id : ids) {
      Facet& f = facets_[id];
      double dist = SignedDist(f, i);
      if (dist > vis_eps_) {
        if (f.outside.empty() || dist > f.furthest_dist) {
          f.furthest_dist = dist;
          f.furthest = i;
        }
        f.outside.push_back(i);
        break;
      }
    }
  }
  for (uint32_t id : ids) {
    if (!facets_[id].outside.empty()) pending_.push_back(id);
  }
  return Status::OK();
}

Result<bool> QuickhullImpl::AddApex(uint32_t base_id) {
  const size_t d = d_;
  const uint32_t apex = facets_[base_id].furthest;

  // Find all facets visible from the apex by flood fill across neighbors.
  ++epoch_;
  visible_.clear();
  horizon_.clear();
  std::vector<uint32_t> stack = {base_id};
  facets_[base_id].visit_epoch = epoch_;
  facets_[base_id].visible = true;
  visible_.push_back(base_id);
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    for (uint32_t nb : facets_[id].neighbors) {
      Facet& g = facets_[nb];
      if (g.visit_epoch == epoch_) continue;
      g.visit_epoch = epoch_;
      g.visible = SignedDist(g, apex) > vis_eps_;
      if (g.visible) {
        visible_.push_back(nb);
        stack.push_back(nb);
      }
    }
  }
  // Horizon ridges: (outside facet, shared d-1 vertices) pairs. Read-only:
  // nothing below mutates shared state until the whole fan has validated,
  // so an inconsistent horizon (a floating-point artifact of a near-surface
  // apex) can be rejected without corrupting the hull.
  std::vector<uint32_t> ridge;
  for (uint32_t id : visible_) {
    for (uint32_t nb : facets_[id].neighbors) {
      if (facets_[nb].visible && facets_[nb].alive) continue;
      ridge.clear();
      std::set_intersection(facets_[id].vertices.begin(),
                            facets_[id].vertices.end(),
                            facets_[nb].vertices.begin(),
                            facets_[nb].vertices.end(),
                            std::back_inserter(ridge));
      if (ridge.size() != d - 1) {
        return false;  // malformed ridge: reject this apex
      }
      horizon_.emplace_back(nb, ridge);
    }
  }
  if (horizon_.empty()) {
    return false;  // apex sees no horizon: reject
  }

  // Stage the new fan. New facets are allocated but nothing outside them is
  // touched yet; planned relinks of horizon neighbors are recorded and
  // applied only after validation.
  std::vector<uint32_t> new_ids;
  new_ids.reserve(horizon_.size());
  struct Relink {
    uint32_t outside_facet;
    size_t slot;       // index into outside_facet.neighbors
    uint32_t new_id;   // replacement
  };
  std::vector<Relink> relinks;
  std::unordered_map<std::vector<uint32_t>, uint32_t, RidgeKeyHash> ridge_map;
  bool valid = true;
  for (auto& [outside_facet, ridge_verts] : horizon_) {
    uint32_t id = NewFacet();
    new_ids.push_back(id);
    Facet& f = facets_[id];
    f.vertices = ridge_verts;
    f.vertices.push_back(apex);
    std::sort(f.vertices.begin(), f.vertices.end());
    if (!ComputePlane(&f).ok()) {
      valid = false;
      break;
    }
    // Plan the relink across the horizon.
    f.neighbors.push_back(outside_facet);
    Facet& out = facets_[outside_facet];
    bool relinked = false;
    for (size_t slot = 0; slot < out.neighbors.size(); ++slot) {
      uint32_t nb = out.neighbors[slot];
      if (facets_[nb].visit_epoch == epoch_ && facets_[nb].visible) {
        bool shares = std::includes(facets_[nb].vertices.begin(),
                                    facets_[nb].vertices.end(),
                                    ridge_verts.begin(), ridge_verts.end());
        if (shares) {
          relinks.push_back(Relink{outside_facet, slot, id});
          relinked = true;
          break;
        }
      }
    }
    if (!relinked) {
      valid = false;
      break;
    }
    // Link new facets to each other through shared sub-ridges (all of
    // which contain the apex).
    std::vector<uint32_t> key;
    for (size_t omit = 0; omit < f.vertices.size(); ++omit) {
      if (f.vertices[omit] == apex) continue;  // that's the horizon ridge
      key.clear();
      for (size_t t = 0; t < f.vertices.size(); ++t) {
        if (t != omit) key.push_back(f.vertices[t]);
      }
      auto [it, inserted] = ridge_map.try_emplace(key, id);
      if (!inserted) {
        uint32_t other = it->second;
        facets_[id].neighbors.push_back(other);
        facets_[other].neighbors.push_back(id);
      }
    }
  }
  // Validate: every new facet must have exactly d neighbors.
  if (valid) {
    for (uint32_t id : new_ids) {
      if (facets_[id].neighbors.size() != d) {
        valid = false;
        break;
      }
    }
  }
  if (!valid) {
    // Roll back: free the staged facets; no shared state was modified.
    for (uint32_t id : new_ids) FreeFacet(id);
    return false;
  }

  // Commit. Gather orphaned outside points, relink the horizon, retire the
  // visible facets, redistribute orphans.
  orphan_points_.clear();
  for (uint32_t id : visible_) {
    for (uint32_t p : facets_[id].outside) {
      if (p != apex && !banned_[p]) orphan_points_.push_back(p);
    }
  }
  for (const Relink& r : relinks) {
    facets_[r.outside_facet].neighbors[r.slot] = r.new_id;
  }
  for (uint32_t id : visible_) FreeFacet(id);
  for (uint32_t p : orphan_points_) {
    for (uint32_t id : new_ids) {
      Facet& f = facets_[id];
      double dist = SignedDist(f, p);
      if (dist > vis_eps_) {
        if (f.outside.empty() || dist > f.furthest_dist) {
          f.furthest_dist = dist;
          f.furthest = p;
        }
        f.outside.push_back(p);
        break;
      }
    }
  }
  for (uint32_t id : new_ids) {
    if (!facets_[id].outside.empty()) pending_.push_back(id);
  }
  return true;
}

Status QuickhullImpl::Run() {
  banned_.assign(n_, 0);
  MDS_RETURN_NOT_OK(BuildInitialSimplex());
  // Outer verify-and-repair loop: with inexact arithmetic the incremental
  // partitioning can orphan a point that is still above some surviving
  // facet. After the queue drains, sweep all points against all facets and
  // reinsert violators. Apexes whose visible region is numerically
  // inconsistent (AddApex returns false) are banned: they sit within
  // rounding distance of the hull surface and are treated as interior.
  for (int sweep = 0; sweep < 32; ++sweep) {
    while (!pending_.empty()) {
      uint32_t id = pending_.back();
      pending_.pop_back();
      Facet& f = facets_[id];
      if (!f.alive || f.outside.empty()) continue;
      MDS_ASSIGN_OR_RETURN(bool added, AddApex(id));
      if (!added) {
        // Ban the apex and re-queue the facet with its remaining points.
        uint32_t apex = f.furthest;
        banned_[apex] = 1;
        std::vector<uint32_t> rest;
        rest.reserve(f.outside.size());
        f.furthest_dist = 0.0;
        for (uint32_t p : f.outside) {
          if (p == apex || banned_[p]) continue;
          double dist = SignedDist(f, p);
          if (dist <= vis_eps_) continue;
          if (rest.empty() || dist > f.furthest_dist) {
            f.furthest_dist = dist;
            f.furthest = p;
          }
          rest.push_back(p);
        }
        f.outside = std::move(rest);
        if (!f.outside.empty()) pending_.push_back(id);
      }
    }
    bool more = ReinsertEscapedPoints();
    if (std::getenv("MDS_QH_DEBUG") != nullptr) {
      std::fprintf(stderr, "qh sweep %d: pending=%zu\n", sweep,
                   pending_.size());
    }
    if (!more) return Status::OK();
  }
  return Status::FailedPrecondition(
      "quickhull: could not converge to a consistent hull (degenerate "
      "input); joggle required");
}

bool QuickhullImpl::ReinsertEscapedPoints() {
  // Returns true if any point still lies above a surviving facet (after
  // queueing it for another round).
  bool found = false;
  for (uint32_t i = 0; i < n_; ++i) {
    if (banned_[i]) continue;
    double best = 0.0;
    uint32_t best_facet = 0;
    for (uint32_t f = 0; f < facets_.size(); ++f) {
      if (!facets_[f].alive) continue;
      double dist = SignedDist(facets_[f], i);
      if (dist > best) {
        best = dist;
        best_facet = f;
      }
    }
    if (best <= vis_eps_) continue;
    // Skip points that are already queued as someone's outside point.
    bool queued = false;
    for (uint32_t f = 0; f < facets_.size() && !queued; ++f) {
      if (!facets_[f].alive) continue;
      for (uint32_t p : facets_[f].outside) {
        if (p == i) {
          queued = true;
          break;
        }
      }
    }
    if (queued) continue;
    Facet& facet = facets_[best_facet];
    if (facet.outside.empty() || best > facet.furthest_dist) {
      facet.furthest_dist = best;
      facet.furthest = i;
    }
    facet.outside.push_back(i);
    pending_.push_back(best_facet);
    found = true;
  }
  return found;
}

ConvexHull QuickhullImpl::TakeResult() {
  ConvexHull hull;
  hull.dim = d_;
  // Compact alive facets and renumber neighbors.
  std::vector<uint32_t> remap(facets_.size(), ~uint32_t{0});
  uint32_t next = 0;
  for (uint32_t i = 0; i < facets_.size(); ++i) {
    if (facets_[i].alive) remap[i] = next++;
  }
  hull.facets.resize(next);
  std::vector<char> on_hull(n_, 0);
  for (uint32_t i = 0; i < facets_.size(); ++i) {
    if (!facets_[i].alive) continue;
    HullFacet& out = hull.facets[remap[i]];
    out.vertices = facets_[i].vertices;
    out.normal = facets_[i].normal;
    out.offset = facets_[i].offset;
    out.neighbors.reserve(facets_[i].neighbors.size());
    for (uint32_t nb : facets_[i].neighbors) {
      if (facets_[nb].alive) out.neighbors.push_back(remap[nb]);
    }
    for (uint32_t v : out.vertices) on_hull[v] = 1;
  }
  for (uint32_t i = 0; i < n_; ++i) {
    if (on_hull[i]) hull.hull_vertices.push_back(i);
  }
  return hull;
}

Result<ConvexHull> RunOnce(const std::vector<double>& points, size_t dim,
                           double eps) {
  QuickhullImpl impl(points.data(), points.size() / dim, dim, eps);
  MDS_RETURN_NOT_OK(impl.Run());
  return impl.TakeResult();
}

}  // namespace

Result<ConvexHull> ComputeConvexHull(const std::vector<double>& points,
                                     size_t dim,
                                     const QuickhullOptions& options) {
  if (dim == 0 || points.size() % dim != 0) {
    return Status::InvalidArgument("ComputeConvexHull: bad point array");
  }
  const size_t n = points.size() / dim;
  if (n < dim + 1) {
    return Status::InvalidArgument("ComputeConvexHull: need at least d+1 points");
  }
  double max_abs = 0.0;
  for (double x : points) max_abs = std::max(max_abs, std::abs(x));
  if (max_abs == 0.0) max_abs = 1.0;
  double eps = options.epsilon > 0.0
                   ? options.epsilon
                   : 1e-10 * static_cast<double>(dim) * max_abs;

  Result<ConvexHull> result = RunOnce(points, dim, eps);
  if (result.ok() || !options.joggle) return result;
  if (std::getenv("MDS_QH_DEBUG") != nullptr) {
    std::fprintf(stderr, "qh attempt 0 failed: %s\n",
                 result.status().ToString().c_str());
  }

  // Joggle: deterministic perturbation retries for degenerate input.
  double scale = options.joggle_scale * max_abs;
  for (int attempt = 0; attempt < options.max_joggle_retries; ++attempt) {
    Rng rng(options.joggle_seed + attempt);
    std::vector<double> jittered = points;
    for (double& x : jittered) x += scale * (rng.NextDouble() - 0.5);
    result = RunOnce(jittered, dim, eps);
    if (result.ok()) return result;
    if (std::getenv("MDS_QH_DEBUG") != nullptr) {
      std::fprintf(stderr, "qh joggle attempt %d (scale %g) failed: %s\n",
                   attempt + 1, scale, result.status().ToString().c_str());
    }
    scale *= 10.0;
  }
  return result;
}

}  // namespace mds
