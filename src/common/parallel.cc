#include "common/parallel.h"

#include <cstdlib>

namespace mds {

unsigned QueryThreads() {
  static const unsigned value = [] {
    if (const char* env = std::getenv("MDS_QUERY_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
  }();
  return value;
}

TaskPool::TaskPool(unsigned threads)
    : num_threads_(threads != 0 ? threads : QueryThreads()) {
  // Worker 0 is the caller; only workers 1..N-1 get threads.
  workers_.reserve(num_threads_ - 1);
  for (unsigned w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::Run(const std::function<void(unsigned)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void TaskPool::WorkerLoop(unsigned worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ParallelFor(TaskPool* pool, uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || pool->num_threads() == 1 || n <= grain) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<uint64_t> next{0};
  pool->Run([&](unsigned) {
    for (;;) {
      const uint64_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const uint64_t end = std::min(begin + grain, n);
      for (uint64_t i = begin; i < end; ++i) fn(i);
    }
  });
}

}  // namespace mds
