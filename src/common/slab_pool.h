#ifndef MDS_COMMON_SLAB_POOL_H_
#define MDS_COMMON_SLAB_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace mds {

/// Thread-striped slab/slice allocator for reply payload buffers (after
/// beng-proxy's SlicePool: slabs are carved into fixed-class slices that
/// recycle through per-stripe free lists instead of the general heap).
///
/// The serving hot path allocates one payload buffer per reply and frees
/// it as soon as the kernel has taken the bytes — a pattern malloc serves
/// with two cache-cold metadata walks per reply and the allocator lock of
/// whichever arena the I/O thread happens to share. Here an allocation is
/// a stripe mutex + free-list pop of a warm, size-classed slice, and a
/// release is the mirror push. Slices are handed out through refcounted
/// handles so one payload can be pinned by several owners at once (the
/// response cache entry and every in-flight socket write queue that is
/// flushing it); the bytes go back to the free list when the last handle
/// drops.
///
/// Size classes are powers of two from kMinSliceBytes to kMaxSliceBytes.
/// Requests above kMaxSliceBytes fall back to a one-off heap allocation
/// behind the same refcounted handle (counted in stats as oversize, never
/// recycled). A request of zero bytes yields a null slice.
///
/// Thread safety: fully thread-safe. Allocation picks a stripe by thread
/// identity (shard-affine: an I/O thread keeps hitting the same warm
/// stripe); release returns the slice to the stripe that owns its slab,
/// whatever thread drops the last reference. Slice handles themselves are
/// NOT thread-safe to mutate concurrently, but distinct handles to the
/// same slice may be used (and dropped) from different threads — the
/// refcount is atomic.
class SlabPool {
 public:
  static constexpr size_t kMinSliceBytes = 256;
  static constexpr size_t kMaxSliceBytes = 1u << 20;  // 1 MiB

  /// Refcounted view of one pooled slice. Copying bumps the refcount;
  /// destroying the last handle returns the slice to its stripe's free
  /// list. `size()` is the byte count in use (set by the writer, at most
  /// `capacity()`, the size class).
  class Slice {
   public:
    Slice() = default;
    ~Slice() { Reset(); }
    Slice(const Slice& other) : ctl_(other.ctl_) { Ref(); }
    Slice(Slice&& other) noexcept : ctl_(other.ctl_) { other.ctl_ = nullptr; }
    Slice& operator=(const Slice& other) {
      if (this != &other) {
        Reset();
        ctl_ = other.ctl_;
        Ref();
      }
      return *this;
    }
    Slice& operator=(Slice&& other) noexcept {
      if (this != &other) {
        Reset();
        ctl_ = other.ctl_;
        other.ctl_ = nullptr;
      }
      return *this;
    }

    explicit operator bool() const { return ctl_ != nullptr; }
    uint8_t* data();
    const uint8_t* data() const;
    size_t size() const;
    size_t capacity() const;
    /// Declares the first n bytes in use; n must be <= capacity().
    void set_size(size_t n);
    /// Drops this handle (refcount--; last drop recycles the slice).
    void Reset();

   private:
    friend class SlabPool;
    struct Control;
    explicit Slice(Control* ctl) : ctl_(ctl) {}
    void Ref();

    Control* ctl_ = nullptr;
  };

  /// `stripes` lock domains (clamped to >= 1). The default suits a
  /// handful of I/O threads plus a worker pool.
  explicit SlabPool(size_t stripes = 8);
  ~SlabPool();

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// The process-wide pool the serving layer allocates reply payloads
  /// from (leaked at exit, like other function-local statics that
  /// outlive detached I/O).
  static SlabPool& Global();

  /// Hands out a slice with capacity >= n (the smallest fitting class);
  /// size() is preset to n. Returns a null slice when n == 0.
  Slice Allocate(size_t n);

  struct StatsSnapshot {
    uint64_t allocations = 0;  ///< slices handed out
    uint64_t recycles = 0;     ///< allocations served from a free list
    uint64_t oversize = 0;     ///< above-kMaxSliceBytes heap fallbacks
    uint64_t live_slices = 0;  ///< handed out and not yet released
    uint64_t bytes_in_use = 0; ///< capacity sum over live slices
  };
  StatsSnapshot Stats() const;

 private:
  struct Stripe;
  static void Release(Slice::Control* ctl);
  static size_t ClassForSize(size_t n);

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<size_t> next_stripe_{0};

  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> recycles_{0};
  std::atomic<uint64_t> oversize_{0};
  std::atomic<uint64_t> live_slices_{0};
  std::atomic<uint64_t> bytes_in_use_{0};
};

}  // namespace mds

#endif  // MDS_COMMON_SLAB_POOL_H_
