#ifndef MDS_COMMON_SOCKET_H_
#define MDS_COMMON_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace mds {

/// Monotonic deadline for socket I/O. A default-constructed deadline is
/// infinite; After(ms) builds one relative to now.
class IoDeadline {
 public:
  IoDeadline() = default;

  static IoDeadline After(uint64_t millis) {
    IoDeadline d;
    d.has_deadline_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(millis);
    return d;
  }
  static IoDeadline Infinite() { return IoDeadline(); }

  bool infinite() const { return !has_deadline_; }
  bool Expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Milliseconds until expiry, clamped to >= 0; -1 when infinite (the
  /// poll(2) convention).
  int PollTimeoutMillis() const;

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_;
};

/// Thin RAII owner of a socket file descriptor. Move-only; closes on
/// destruction. All I/O is Status-based and EINTR/partial-transfer safe —
/// the same discipline FilePager applies to file I/O, applied to the wire.
///
/// Thread safety: thread-compatible. Reads and writes may come from two
/// different threads (one thread reads requests while another writes a
/// reply) because they touch disjoint directions of the stream,
/// but each direction must be externally serialized. ShutdownBoth() may
/// be called from any thread to unblock a peer stuck in ReadFull, but the
/// caller must guarantee the socket is not concurrently Close()d or
/// moved — shutdown of a racing fd close could hit a recycled descriptor.
/// QueryClient's poison-on-failure discipline provides that guarantee for
/// the coordinator's hedge-abort path.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly n bytes. Blocks (bounded by `deadline`) until the bytes
  /// arrive, the peer closes (kUnavailable, "connection closed"; NotFound
  /// when the close lands exactly on a frame boundary, i.e. zero bytes
  /// read), the deadline expires (kUnavailable, "deadline"), or a socket
  /// error occurs (kIOError).
  Status ReadFull(void* buf, size_t n, const IoDeadline& deadline);

  /// Writes exactly n bytes (MSG_NOSIGNAL; a closed peer is kUnavailable,
  /// never SIGPIPE).
  Status WriteFull(const void* buf, size_t n, const IoDeadline& deadline);

  /// Disables Nagle's algorithm — required for request/reply framing, or
  /// every small query pays a delayed-ACK round trip.
  Status SetNoDelay();

  /// Puts the fd in O_NONBLOCK mode (the event-loop discipline: readiness
  /// comes from epoll, never from blocking in read/write). ReadFull and
  /// WriteFull keep working on a non-blocking fd (they poll on EAGAIN).
  Status SetNonBlocking();

  /// shutdown(SHUT_RDWR): wakes any thread blocked in ReadFull/WriteFull
  /// on this socket with "connection closed". The fd stays owned.
  void ShutdownBoth();

  /// shutdown(SHUT_RD): wakes a thread blocked in ReadFull (it sees a
  /// clean close) while the write direction keeps flushing — the graceful
  /// drain: in-flight replies still go out, no new requests are read.
  void ShutdownRead();

  void Close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (the serving layer is a
/// loopback/LAN protocol; TLS and remote exposure are out of scope).
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port; port 0 picks a free ephemeral
  /// port, readable from port() afterwards.
  static Result<TcpListener> Listen(uint16_t port, int backlog = 128);

  /// Accepts one connection, bounded by `deadline`; kUnavailable on
  /// deadline expiry or if the listener was shut down.
  Result<Socket> Accept(const IoDeadline& deadline);

  /// Non-blocking accept for the event-loop path (the listener fd must be
  /// in non-blocking mode). Failure taxonomy: kUnavailable = nothing
  /// pending (EAGAIN) or listener shut down; kResourceExhausted = fd/
  /// buffer exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM — the caller should
  /// back off, not spin); kIOError otherwise.
  Result<Socket> AcceptNonBlocking();

  uint16_t port() const { return port_; }
  int fd() const { return socket_.fd(); }
  bool valid() const { return socket_.valid(); }

  /// Puts the listening fd in O_NONBLOCK mode (see AcceptNonBlocking).
  Status SetNonBlocking() { return socket_.SetNonBlocking(); }

  /// Unblocks a pending Accept from another thread.
  void Shutdown() { socket_.ShutdownBoth(); }

 private:
  Socket socket_;
  uint16_t port_ = 0;
};

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"), bounded
/// by `timeout_millis` (0 = no bound). The returned socket has TCP_NODELAY
/// set.
Result<Socket> TcpConnect(const std::string& host, uint16_t port,
                          uint64_t timeout_millis = 0);

}  // namespace mds

#endif  // MDS_COMMON_SOCKET_H_
