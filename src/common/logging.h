#ifndef MDS_COMMON_LOGGING_H_
#define MDS_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant check: aborts with a message on violation. Used for
/// programmer errors (broken invariants), never for recoverable conditions,
/// which are reported through Status.
#define MDS_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MDS_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only invariant check: compiled out under NDEBUG so it can guard
/// hot paths (per-access page bounds checks) at zero release cost.
#ifdef NDEBUG
#define MDS_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MDS_DCHECK(cond) MDS_CHECK(cond)
#endif

#endif  // MDS_COMMON_LOGGING_H_
