#ifndef MDS_COMMON_BUFFERED_SOCKET_H_
#define MDS_COMMON_BUFFERED_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/slab_pool.h"
#include "common/socket.h"

namespace mds {

/// Non-blocking read/write buffering over an owned Socket — the per-
/// connection I/O state of the event-loop server (after beng-proxy's
/// buffered_socket: a receive buffer the frame parser consumes from, and
/// a queue of outgoing frames flushed with scatter-gather writev).
///
/// The fd is put in O_NONBLOCK mode at construction. Fill() and Flush()
/// never block: they move as many bytes as the kernel will take and
/// report would-block, so the caller (an EventLoop handler) re-arms
/// readiness instead of waiting.
///
/// Thread safety: none — a BufferedSocket is owned by its connection's
/// loop thread. Cross-thread reply submission goes through
/// EventLoop::Post, never directly into QueueWrite.
class BufferedSocket {
 public:
  BufferedSocket() = default;
  explicit BufferedSocket(Socket sock);

  BufferedSocket(BufferedSocket&&) = default;
  BufferedSocket& operator=(BufferedSocket&&) = default;

  Socket& socket() { return sock_; }
  int fd() const { return sock_.fd(); }
  bool valid() const { return sock_.valid(); }

  enum class IoResult {
    kProgress,    ///< moved at least one byte
    kWouldBlock,  ///< kernel has nothing (read) / took nothing (write)
    kClosed,      ///< peer closed (read: EOF; write: EPIPE/ECONNRESET)
    kError,       ///< unrecoverable socket error
  };

  /// Reads whatever the kernel has into the receive buffer, up to
  /// `max_bytes` this call (backpressure: a peer blasting frames cannot
  /// make the buffer grow unboundedly in one event). kWouldBlock with
  /// buffered data still pending parse is normal.
  IoResult Fill(size_t max_bytes = 1 << 20);

  /// Unconsumed received bytes (the frame parser's window).
  const uint8_t* data() const { return read_buf_.data() + read_pos_; }
  size_t size() const { return read_buf_.size() - read_pos_; }
  /// Marks n received bytes as parsed.
  void Consume(size_t n);

  /// Queues one outgoing buffer (an encoded frame, or a frame segment —
  /// segments queued back to back are gathered into one writev). Does not
  /// write; callers follow with Flush() and watch for kWouldBlock.
  void QueueWrite(std::vector<uint8_t> bytes);
  /// Queues a refcounted slab slice (its size() bytes) without copying.
  /// The queue holds a reference until the kernel has taken every byte,
  /// so a cache entry sharing the slice stays valid while it flushes.
  void QueueWrite(SlabPool::Slice slice);

  /// Writes queued buffers with writev until the queue drains or the
  /// kernel stops taking bytes. kProgress means drained here.
  IoResult Flush();

  /// Bytes queued but not yet accepted by the kernel (write-side
  /// backpressure signal).
  size_t pending_write_bytes() const { return pending_write_bytes_; }
  bool has_pending_write() const { return pending_write_bytes_ != 0; }

 private:
  void CompactReadBuffer();

  Socket sock_;
  std::vector<uint8_t> read_buf_;
  size_t read_pos_ = 0;

  /// One write-queue entry: either an owned byte vector or a refcounted
  /// slab slice (zero-copy reply tails). Exactly one is non-empty.
  struct WriteBuf {
    std::vector<uint8_t> owned;
    SlabPool::Slice slice;

    const uint8_t* data() const {
      return slice ? slice.data() : owned.data();
    }
    size_t size() const { return slice ? slice.size() : owned.size(); }
  };

  std::deque<WriteBuf> write_queue_;
  size_t write_front_pos_ = 0;  // consumed bytes of write_queue_.front()
  size_t pending_write_bytes_ = 0;
};

}  // namespace mds

#endif  // MDS_COMMON_BUFFERED_SOCKET_H_
