#include "common/crc32c.h"

#include <cstring>
#include <vector>

#if defined(__SSE4_2__) || (defined(__x86_64__) && defined(__GNUC__))
#include <nmmintrin.h>
#define MDS_CRC32C_HAVE_SSE42_PATH 1
#endif

namespace mds {

namespace {

/// Slice-by-8 lookup tables, built once at first use. table[0] is the
/// classic byte-at-a-time table; table[k] advances a byte through k extra
/// zero bytes, letting the hot loop fold 8 input bytes per iteration.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

/// `crc` here is the raw (already-inverted) running remainder.
uint32_t Crc32cSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  const Crc32cTables& tb = Tables();
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  return crc;
}

#if defined(MDS_CRC32C_HAVE_SSE42_PATH)
/// Hardware CRC32C path, compiled for SSE4.2 regardless of the global
/// target so the binary still runs everywhere; Crc32c() dispatches to it
/// only after a cpuid check.
///
/// A single _mm_crc32_u64 chain is latency-bound (3 cycles per 8 bytes);
/// the bulk loop below runs three independent chains over adjacent
/// kStride-byte blocks and merges them with a zero-advance table, which is
/// what keeps 8 KiB page verification inside the E19 overhead budget.

/// One serially-dependent hardware chain over raw (inverted) state.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware1Way(uint32_t crc,
                                                              const uint8_t* p,
                                                              size_t n) {
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return crc;
}

/// Bytes per interleaved stream. 3 * kStride = 8184, so one pass covers
/// nearly a whole page's CRC span.
constexpr size_t kStride = 2728;

/// Tables for the linear map "advance a raw CRC state through kStride zero
/// bytes", one 256-entry table per state byte. crc_raw(s, X||Y) =
/// Advance(crc_raw(s, X)) ^ crc_raw(0, Y) by GF(2)-linearity, which is the
/// identity the 3-way merge rests on.
struct ZeroAdvanceTables {
  uint32_t t[4][256];
};

const ZeroAdvanceTables& AdvanceTables() {
  static const ZeroAdvanceTables tables = [] {
    ZeroAdvanceTables tb;
    std::vector<uint8_t> zeros(kStride, 0);
    for (int b = 0; b < 4; ++b) {
      for (uint32_t v = 0; v < 256; ++v) {
        tb.t[b][v] = Crc32cHardware1Way(v << (8 * b), zeros.data(), kStride);
      }
    }
    return tb;
  }();
  return tables;
}

inline uint32_t AdvanceZeros(uint32_t s, const ZeroAdvanceTables& tb) {
  return tb.t[0][s & 0xff] ^ tb.t[1][(s >> 8) & 0xff] ^
         tb.t[2][(s >> 16) & 0xff] ^ tb.t[3][s >> 24];
}

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  if (n >= 3 * kStride) {
    const ZeroAdvanceTables& tb = AdvanceTables();
    while (n >= 3 * kStride) {
      uint32_t a = crc, b = 0, c = 0;
      const uint8_t* pa = p;
      const uint8_t* pb = p + kStride;
      const uint8_t* pc = p + 2 * kStride;
      for (size_t i = 0; i < kStride; i += 8) {
        uint64_t va, vb, vc;
        std::memcpy(&va, pa + i, 8);
        std::memcpy(&vb, pb + i, 8);
        std::memcpy(&vc, pc + i, 8);
        a = static_cast<uint32_t>(_mm_crc32_u64(a, va));
        b = static_cast<uint32_t>(_mm_crc32_u64(b, vb));
        c = static_cast<uint32_t>(_mm_crc32_u64(c, vc));
      }
      crc = AdvanceZeros(AdvanceZeros(a, tb) ^ b, tb) ^ c;
      p += 3 * kStride;
      n -= 3 * kStride;
    }
  }
  return Crc32cHardware1Way(crc, p, n);
}

bool CpuHasSse42() { return __builtin_cpu_supports("sse4.2") != 0; }
#endif

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
#if defined(MDS_CRC32C_HAVE_SSE42_PATH)
  static const bool use_hardware = CpuHasSse42();
  crc = use_hardware ? Crc32cHardware(crc, p, n) : Crc32cSoftware(crc, p, n);
#else
  crc = Crc32cSoftware(crc, p, n);
#endif
  return ~crc;
}

}  // namespace mds
