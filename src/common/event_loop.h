#ifndef MDS_COMMON_EVENT_LOOP_H_
#define MDS_COMMON_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mds {

/// A single-threaded epoll reactor: one thread multiplexes readiness for
/// any number of file descriptors, fires monotonic-clock timers from a
/// hashed timer wheel, and runs callbacks posted from other threads (a
/// self-pipe wakes the epoll_wait). This is the serving layer's I/O core:
/// the mdsd server runs one EventLoop per I/O thread and registers every
/// connection on it, so thread count is independent of connection count.
///
/// Thread safety: Add/Modify/Remove/AddTimer/CancelTimer and all handler
/// callbacks run on the loop thread only (assert-checked in debug). Post()
/// and Stop() are safe from any thread — Post is the cross-thread entry
/// point; to touch a registered fd from outside, Post a callback that does
/// it. Run() is called by exactly one thread, which becomes the loop
/// thread for its duration.
class EventLoop {
 public:
  /// Event bits for Add/Modify and the readiness mask handed to fd
  /// handlers. kHangup/kError are level reported by the kernel without
  /// being requested.
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kHangup = 1u << 2;
  static constexpr uint32_t kError = 1u << 3;
  /// Add-time option: edge-triggered delivery (EPOLLET). The handler must
  /// then drain the fd to EAGAIN on every event. Default is level.
  static constexpr uint32_t kEdgeTriggered = 1u << 4;

  using FdHandler = std::function<void(uint32_t ready)>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when the epoll instance or wakeup pipe could not be created
  /// (the constructor cannot report a Status); every method is a safe
  /// no-op / error in that state.
  bool valid() const { return epoll_fd_ >= 0; }

  /// Registers `fd` for the events in `mask` (kReadable/kWritable, plus
  /// kEdgeTriggered as an option). The handler is invoked on the loop
  /// thread with the ready-event mask whenever the fd fires. The loop
  /// never owns or closes the fd.
  Status Add(int fd, uint32_t mask, FdHandler handler);

  /// Changes the watched event set of a registered fd.
  Status Modify(int fd, uint32_t mask);

  /// Deregisters an fd. Safe to call from inside any handler, including
  /// for an fd with a not-yet-dispatched event in the current batch (the
  /// stale event is dropped). No-op if the fd is not registered.
  void Remove(int fd);

  /// Arms a one-shot timer `delay_ms` from now; returns an id for
  /// CancelTimer. Timers fire on the loop thread with the wheel's tick
  /// granularity (kTickMillis) of slack.
  TimerId AddTimer(uint64_t delay_ms, std::function<void()> callback);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  void CancelTimer(TimerId id);

  /// Enqueues `fn` to run on the loop thread and wakes the loop. Safe from
  /// any thread, including the loop thread itself (runs on the next
  /// iteration, not reentrantly). Posted after Stop(), fn is discarded.
  void Post(std::function<void()> fn);

  /// Dispatches events, timers and posted callbacks until Stop(). The
  /// calling thread is the loop thread for the duration.
  void Run();

  /// Makes Run() return once the current iteration's dispatch completes.
  /// Safe from any thread; idempotent.
  void Stop();

  /// True when called on the thread currently inside Run().
  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_.load();
  }

  /// Timer wheel granularity. A timer may fire up to one tick late.
  static constexpr uint64_t kTickMillis = 10;

 private:
  struct Timer {
    TimerId id = 0;
    uint64_t rounds = 0;  ///< full wheel revolutions until due
    std::function<void()> callback;
  };

  static constexpr size_t kWheelSlots = 512;  // 512 * 10ms ≈ 5.1s horizon

  void AdvanceWheel();
  void DrainWakeupPipe();
  void RunPosted();
  /// Milliseconds until the next wheel tick is due; -1 with no timers.
  int PollTimeoutMillis() const;

  int epoll_fd_ = -1;
  int wakeup_read_fd_ = -1;
  int wakeup_write_fd_ = -1;

  std::unordered_map<int, FdHandler> handlers_;  // loop thread only

  // Timer wheel (loop thread only): slot = due tick mod kWheelSlots, with
  // a rounds counter for ticks beyond one revolution.
  std::vector<std::deque<Timer>> wheel_{kWheelSlots};
  size_t wheel_pos_ = 0;
  uint64_t current_tick_ = 0;
  size_t active_timers_ = 0;
  TimerId next_timer_id_ = 1;
  std::chrono::steady_clock::time_point wheel_epoch_;

  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_{};

  std::mutex post_mu_;
  std::deque<std::function<void()>> posted_;  // guarded by post_mu_
};

}  // namespace mds

#endif  // MDS_COMMON_EVENT_LOOP_H_
