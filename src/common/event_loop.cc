#include "common/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace mds {

namespace {

constexpr int kMaxEventsPerWait = 128;

uint32_t ToEpollMask(uint32_t mask) {
  uint32_t ep = 0;
  if (mask & EventLoop::kReadable) ep |= EPOLLIN;
  if (mask & EventLoop::kWritable) ep |= EPOLLOUT;
  if (mask & EventLoop::kEdgeTriggered) ep |= EPOLLET;
  return ep;
}

uint32_t FromEpollMask(uint32_t ep) {
  uint32_t mask = 0;
  if (ep & (EPOLLIN | EPOLLPRI)) mask |= EventLoop::kReadable;
  if (ep & EPOLLOUT) mask |= EventLoop::kWritable;
  if (ep & (EPOLLHUP | EPOLLRDHUP)) mask |= EventLoop::kHangup;
  if (ep & EPOLLERR) mask |= EventLoop::kError;
  return mask;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;
  int pipe_fds[2];
  if (pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  wakeup_read_fd_ = pipe_fds[0];
  wakeup_write_fd_ = pipe_fds[1];
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_read_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_read_fd_, &ev) != 0) {
    close(wakeup_read_fd_);
    close(wakeup_write_fd_);
    close(epoll_fd_);
    epoll_fd_ = wakeup_read_fd_ = wakeup_write_fd_ = -1;
    return;
  }
  wheel_epoch_ = std::chrono::steady_clock::now();
}

EventLoop::~EventLoop() {
  if (wakeup_read_fd_ >= 0) close(wakeup_read_fd_);
  if (wakeup_write_fd_ >= 0) close(wakeup_write_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t mask, FdHandler handler) {
  if (!valid()) return Status::FailedPrecondition("event loop is invalid");
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = ToEpollMask(mask);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(ADD): ") + strerror(errno));
  }
  handlers_[fd] = std::move(handler);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t mask) {
  if (!valid()) return Status::FailedPrecondition("event loop is invalid");
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = ToEpollMask(mask);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(MOD): ") + strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (!valid()) return;
  if (handlers_.erase(fd) == 0) return;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::AddTimer(uint64_t delay_ms,
                                       std::function<void()> callback) {
  const uint64_t ticks = std::max<uint64_t>(
      1, (delay_ms + kTickMillis - 1) / kTickMillis);
  const uint64_t due = current_tick_ + ticks;
  const TimerId id = next_timer_id_++;
  Timer timer;
  timer.id = id;
  timer.rounds = (ticks - 1) / kWheelSlots;
  timer.callback = std::move(callback);
  wheel_[due % kWheelSlots].push_back(std::move(timer));
  ++active_timers_;
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  for (auto& slot : wheel_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --active_timers_;
        return;
      }
    }
  }
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  // A spurious or dropped wakeup byte is fine: the pipe is non-blocking
  // (a full pipe means a wakeup is already pending) and the loop drains
  // every posted callback per iteration.
  if (wakeup_write_fd_ >= 0) {
    const uint8_t one = 1;
    ssize_t rc;
    do {
      rc = write(wakeup_write_fd_, &one, 1);
    } while (rc < 0 && errno == EINTR);
  }
}

void EventLoop::DrainWakeupPipe() {
  uint8_t buf[256];
  while (read(wakeup_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::RunPosted() {
  // Swap under the lock, run outside it: a posted callback may Post again
  // (next iteration) without deadlocking.
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::AdvanceWheel() {
  const auto now = std::chrono::steady_clock::now();
  const uint64_t tick_now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - wheel_epoch_)
          .count() /
      kTickMillis);
  while (current_tick_ < tick_now) {
    ++current_tick_;
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    auto& slot = wheel_[wheel_pos_];
    // Fire entries that completed their revolutions; decrement the rest.
    // Collect first: a callback may add timers into this same slot.
    std::vector<std::function<void()>> due;
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->rounds == 0) {
        due.push_back(std::move(it->callback));
        it = slot.erase(it);
        --active_timers_;
      } else {
        --it->rounds;
        ++it;
      }
    }
    for (auto& fn : due) fn();
  }
}

int EventLoop::PollTimeoutMillis() const {
  if (active_timers_ == 0) return -1;
  const auto next_tick_at =
      wheel_epoch_ +
      std::chrono::milliseconds((current_tick_ + 1) * kTickMillis);
  const auto now = std::chrono::steady_clock::now();
  if (now >= next_tick_at) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      next_tick_at - now)
                      .count();
  return static_cast<int>(
      std::min<long long>(ms + 1, std::numeric_limits<int>::max()));
}

void EventLoop::Run() {
  if (!valid()) return;
  loop_thread_.store(std::this_thread::get_id());
  struct epoll_event events[kMaxEventsPerWait];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEventsPerWait,
                             PollTimeoutMillis());
    if (n < 0 && errno != EINTR) break;
    AdvanceWheel();
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_read_fd_) {
        DrainWakeupPipe();
        continue;
      }
      // Look the handler up at dispatch time: an earlier handler in this
      // batch may have Remove()d this fd (e.g. closed the connection).
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      // Invoke a copy: the handler itself may Remove(fd), and erasing the
      // map entry mid-call would destroy the closure being executed.
      FdHandler handler = it->second;
      handler(FromEpollMask(events[i].events));
    }
    RunPosted();
  }
  RunPosted();  // drain callbacks posted concurrently with Stop()
  loop_thread_.store(std::thread::id());
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Post([] {});  // wake the loop if it is blocked in epoll_wait
}

}  // namespace mds
