#ifndef MDS_COMMON_PARALLEL_H_
#define MDS_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mds {

/// Worker count for query execution and index builds: the value of the
/// MDS_QUERY_THREADS environment variable if set and positive, otherwise
/// std::thread::hardware_concurrency() (minimum 1). Read once per process.
unsigned QueryThreads();

/// Fixed pool of worker threads. Workers are started once and reused for
/// every Run() call — the "fixed worker pool" all parallel query machinery
/// (ParallelRangeScanner, QueryEngine::ExecuteBatch, parallel kd-tree
/// build) shares, so concurrency is bounded by one knob rather than
/// multiplying per layer.
///
/// Thread safety: Run() may be called from one thread at a time per pool
/// (it is a synchronous fork/join, not a task queue); distinct pools are
/// independent. The pool itself must be constructed and destroyed on a
/// single thread.
class TaskPool {
 public:
  /// threads == 0 picks QueryThreads(). A pool of 1 runs Run() bodies
  /// inline on the calling thread (no worker is spawned).
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Invokes fn(worker) for worker = 0..num_threads()-1, one invocation
  /// per worker thread (worker 0 runs on the calling thread), and blocks
  /// until all invocations return. fn must not throw.
  void Run(const std::function<void(unsigned)>& fn);

 private:
  void WorkerLoop(unsigned worker);

  unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // Run() waits for completion
  const std::function<void(unsigned)>* job_ = nullptr;  // valid while running
  uint64_t generation_ = 0;  // bumped per Run(); workers run once per bump
  unsigned pending_ = 0;     // workers still inside the current job
  bool stop_ = false;
};

/// Fork/join parallel loop: invokes fn(i) for every i in [0, n), dynamically
/// load-balanced across the pool's workers in chunks of `grain` iterations.
/// Iterations must be independent; fn may run on any worker thread,
/// including the caller's. With a 1-thread pool this is a plain loop.
void ParallelFor(TaskPool* pool, uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t)>& fn);

}  // namespace mds

#endif  // MDS_COMMON_PARALLEL_H_
