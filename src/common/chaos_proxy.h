#ifndef MDS_COMMON_CHAOS_PROXY_H_
#define MDS_COMMON_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/socket.h"

namespace mds {

/// Fault-injection policy of one proxied link. All probabilities are per
/// draw (per accepted connection for reset/blackhole, per forwarded frame
/// for truncation/bit-flips); draws come from the proxy's single seeded
/// Rng in decision order, so a fixed seed replays the same fault
/// schedule against the same traffic.
struct ChaosPolicy {
  /// P(connection is reset): the link closes abruptly — immediately on
  /// accept, or after forwarding reset_after_request_frames client
  /// frames (a mid-conversation kill, the nastier variant).
  double reset_probability = 0.0;
  uint32_t reset_after_request_frames = 0;
  /// P(connection is blackholed): accepted, then all bytes read and
  /// discarded forever — the peer's deadline is the only way out. This
  /// is the accept()-then-stall failure mode of a wedged server.
  double blackhole_probability = 0.0;
  /// Fixed + uniform-random delay added before forwarding each
  /// client->server frame (a slow-but-alive backend link).
  uint32_t latency_ms = 0;
  uint32_t jitter_ms = 0;
  /// Bandwidth cap on the server->client direction; 0 = unlimited.
  uint64_t throttle_bytes_per_sec = 0;
  /// P(server->client frame is truncated): a strict prefix is forwarded,
  /// then the link dies — the peer sees a mid-frame close.
  double truncate_probability = 0.0;
  /// P(server->client frame has one payload bit flipped): the frame CRC
  /// no longer matches, exercising the receiver's corruption path.
  double bitflip_probability = 0.0;
};

/// Deterministic fault-injecting TCP proxy for one backend link: listens
/// on an ephemeral loopback port and forwards mds wire frames (see
/// docs/PROTOCOL.md: 12-byte prefix = u32 magic, u32 length, u32 CRC32C)
/// to the target, injecting faults per ChaosPolicy. Chaos tests put one
/// ChaosProxy between the coordinator and each mdsd replica so every
/// distributed failure mode is reproducible from a seed.
///
/// The proxy is frame-aware (it parses prefixes to fault whole frames and
/// observe request payloads) but protocol-agnostic beyond that — it never
/// decodes message bodies. A stream that stops looking like frames (bad
/// magic, oversized length) closes the link.
///
/// Thread model: one accept thread plus two pump threads per live link.
/// SetPolicy applies to decisions made after the call. Shutdown() stops
/// the acceptor, shuts both sockets of every link and joins all threads.
class ChaosProxy {
 public:
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_reset = 0;
    uint64_t connections_blackholed = 0;
    uint64_t frames_in = 0;           ///< client->server frames forwarded
    uint64_t frames_out = 0;          ///< server->client frames forwarded
    uint64_t frames_truncated = 0;
    uint64_t frames_bitflipped = 0;
  };

  ChaosProxy(std::string target_host, uint16_t target_port, uint64_t seed,
             const ChaosPolicy& policy = {});
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listening port and starts the accept thread.
  Status Start();

  /// Bound loopback port (valid after Start) — point the client here.
  uint16_t port() const { return listener_.port(); }

  /// Replaces the policy for subsequent decisions (per-connection draws
  /// for links accepted later, per-frame draws for frames seen later).
  void SetPolicy(const ChaosPolicy& policy);
  ChaosPolicy policy() const;

  /// Observer for every client->server frame payload (prefix stripped),
  /// called before the frame is forwarded. Chaos tests use it to watch
  /// the deadline budget a coordinator hands each backend leg. Set before
  /// Start(); runs on pump threads.
  void SetClientFrameObserver(
      std::function<void(const std::vector<uint8_t>& payload)> observer) {
    observer_ = std::move(observer);
  }

  Counters counters() const;

  /// Stops accepting, severs every live link and joins all threads.
  /// Idempotent.
  void Shutdown();

 private:
  /// One proxied connection: the client-side socket, the backend socket,
  /// and the two direction pumps.
  struct Link {
    Socket client;
    Socket server;
    std::thread client_to_server;
    std::thread server_to_client;
    std::atomic<bool> dead{false};  ///< both pumps may be gone
    std::atomic<int> pumps_running{0};
  };

  void AcceptLoop();
  void RunLink(Link* link, bool blackhole, bool reset_now,
               uint32_t reset_after_frames);
  /// Reads frames from `from` and forwards them to `to` with the
  /// direction's faults applied. client_to_server selects which faults
  /// (latency + observer vs. truncation/bit-flips/throttle) apply.
  void Pump(Link* link, Socket* from, Socket* to, bool client_to_server,
            uint32_t reset_after_frames);
  /// Reads one whole frame (prefix + payload) from `from`; empty result
  /// with non-OK status on close/desync.
  Status ReadWholeFrame(Socket* from, std::vector<uint8_t>* frame);
  /// Writes `data` to `to`, honoring the throttle if `throttled`.
  Status ForwardBytes(Socket* to, const uint8_t* data, size_t len,
                      bool throttled);
  /// Joins links whose pumps have both exited (called from AcceptLoop so
  /// long campaigns do not accumulate joinable threads).
  void ReapDeadLinks();

  double NextDraw();
  uint64_t NextBounded(uint64_t bound);

  const std::string target_host_;
  const uint16_t target_port_;

  mutable std::mutex policy_mu_;
  ChaosPolicy policy_;

  mutable std::mutex rng_mu_;
  Rng rng_;

  std::function<void(const std::vector<uint8_t>&)> observer_;

  TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::mutex links_mu_;
  std::vector<std::unique_ptr<Link>> links_;

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace mds

#endif  // MDS_COMMON_CHAOS_PROXY_H_
