#include "common/status.h"

namespace mds {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status AnnotateStatus(const Status& status, std::string_view context) {
  if (status.ok()) return status;
  std::string message(context);
  message += ": ";
  message += status.message();
  return Status(status.code(), std::move(message));
}

}  // namespace mds
