#ifndef MDS_COMMON_TIMER_H_
#define MDS_COMMON_TIMER_H_

#include <chrono>

namespace mds {

/// Simple monotonic wall-clock timer for benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mds

#endif  // MDS_COMMON_TIMER_H_
