#ifndef MDS_COMMON_HISTOGRAM_H_
#define MDS_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mds {

/// Fixed log-bucketed histogram of non-negative integer samples (latency
/// in microseconds, sizes in bytes, ...). The bucket layout is static —
/// every power of two is split into 4 geometric sub-buckets, covering the
/// full uint64 range in 252 buckets with <= ~19% relative quantile error —
/// so two histograms are always mergeable bucket-by-bucket and recording
/// never allocates.
///
/// Thread safety: Record() is lock-free (one relaxed atomic increment per
/// sample) and may be called from any number of threads concurrently —
/// this is the per-request-type latency recorder on the server's hot
/// path. Readers (Merge into a Snapshot) see a consistent-enough view for
/// monitoring: counts are summed with relaxed loads, so a snapshot taken
/// while writers are active may miss in-flight samples but never tears a
/// counter.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 2;  // 4 sub-buckets per octave
  static constexpr size_t kNumBuckets =
      ((64 - kSubBucketBits) << kSubBucketBits) + (1u << kSubBucketBits);

  Histogram() = default;

  /// Lock-free; safe from any thread.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Plain-value copy of a histogram's state: what crosses the wire in a
  /// stats reply and what percentile queries are answered from.
  struct Snapshot {
    std::vector<uint64_t> buckets;  // kNumBuckets counts
    uint64_t count = 0;
    uint64_t sum = 0;

    /// Estimated value at percentile p in [0, 100]: the geometric midpoint
    /// of the bucket holding the p-th sample (0 for an empty histogram).
    uint64_t ValueAtPercentile(double p) const;
    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Bucket-wise accumulation (histograms of the same static layout are
    /// always compatible).
    void Merge(const Snapshot& other);
  };

  Snapshot TakeSnapshot() const;

  /// Index of the bucket holding `value` (exposed for tests and for the
  /// wire codec, which transmits only non-empty buckets).
  static size_t BucketIndex(uint64_t value);

  /// Upper bound of bucket `index` (inclusive); the geometric midpoint of
  /// [LowerBound, UpperBound] is the reported quantile value.
  static uint64_t BucketUpperBound(size_t index);
  static uint64_t BucketLowerBound(size_t index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace mds

#endif  // MDS_COMMON_HISTOGRAM_H_
