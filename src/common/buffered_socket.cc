#include "common/buffered_socket.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <utility>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace mds {

namespace {

/// Chunk size per recv() call; also the growth step of the read buffer.
constexpr size_t kReadChunk = 64 * 1024;

/// writev gathers at most this many queued buffers per call (IOV_MAX is
/// much larger; 16 already amortizes the syscall across a pipeline).
constexpr int kMaxIovecs = 16;

}  // namespace

BufferedSocket::BufferedSocket(Socket sock) : sock_(std::move(sock)) {
  if (sock_.valid()) (void)sock_.SetNonBlocking();
}

void BufferedSocket::CompactReadBuffer() {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection doesn't accrete every frame it ever received.
  if (read_pos_ > 0 && (read_pos_ >= read_buf_.size() ||
                        read_pos_ >= kReadChunk)) {
    read_buf_.erase(read_buf_.begin(),
                    read_buf_.begin() + static_cast<ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }
}

BufferedSocket::IoResult BufferedSocket::Fill(size_t max_bytes) {
  CompactReadBuffer();
  size_t filled = 0;
  while (filled < max_bytes) {
    const size_t want = std::min(kReadChunk, max_bytes - filled);
    const size_t old_size = read_buf_.size();
    read_buf_.resize(old_size + want);
    const ssize_t rc = recv(sock_.fd(), read_buf_.data() + old_size, want, 0);
    if (rc > 0) {
      read_buf_.resize(old_size + static_cast<size_t>(rc));
      filled += static_cast<size_t>(rc);
      if (static_cast<size_t>(rc) < want) {
        return IoResult::kProgress;  // kernel drained; skip one EAGAIN round
      }
      continue;
    }
    read_buf_.resize(old_size);
    if (rc == 0) return IoResult::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return filled > 0 ? IoResult::kProgress : IoResult::kWouldBlock;
    }
    return IoResult::kError;
  }
  return IoResult::kProgress;
}

void BufferedSocket::Consume(size_t n) {
  read_pos_ += std::min(n, read_buf_.size() - read_pos_);
}

void BufferedSocket::QueueWrite(std::vector<uint8_t> bytes) {
  if (bytes.empty()) return;
  pending_write_bytes_ += bytes.size();
  WriteBuf buf;
  buf.owned = std::move(bytes);
  write_queue_.push_back(std::move(buf));
}

void BufferedSocket::QueueWrite(SlabPool::Slice slice) {
  if (!slice || slice.size() == 0) return;
  pending_write_bytes_ += slice.size();
  WriteBuf buf;
  buf.slice = std::move(slice);
  write_queue_.push_back(std::move(buf));
}

BufferedSocket::IoResult BufferedSocket::Flush() {
  while (!write_queue_.empty()) {
    struct iovec iov[kMaxIovecs];
    int iovcnt = 0;
    size_t offset = write_front_pos_;
    for (const auto& buf : write_queue_) {
      if (iovcnt == kMaxIovecs) break;
      iov[iovcnt].iov_base = const_cast<uint8_t*>(buf.data()) + offset;
      iov[iovcnt].iov_len = buf.size() - offset;
      ++iovcnt;
      offset = 0;
    }
    struct msghdr msg;
    memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t rc = sendmsg(sock_.fd(), &msg, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult::kWouldBlock;
      }
      if (errno == EPIPE || errno == ECONNRESET) return IoResult::kClosed;
      return IoResult::kError;
    }
    size_t written = static_cast<size_t>(rc);
    pending_write_bytes_ -= written;
    while (written > 0 && !write_queue_.empty()) {
      auto& front = write_queue_.front();
      const size_t left = front.size() - write_front_pos_;
      if (written >= left) {
        written -= left;
        write_front_pos_ = 0;
        write_queue_.pop_front();
      } else {
        write_front_pos_ += written;
        written = 0;
      }
    }
  }
  return IoResult::kProgress;
}

}  // namespace mds
