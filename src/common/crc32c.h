#ifndef MDS_COMMON_CRC32C_H_
#define MDS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace mds {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum used by iSCSI, ext4, RocksDB and LevelDB for exactly our use
/// case: detecting bit rot and torn writes in fixed-size storage blocks.
/// Software slice-by-8 implementation (~1 byte/cycle), no ISA extensions
/// required; a hardware SSE4.2 path is used when the compiler targets it.

/// Extends `crc` (CRC of preceding bytes, 0 for a fresh run) over
/// data[0, n).
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// One-shot convenience: CRC-32C of data[0, n).
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32c(0, data, n);
}

}  // namespace mds

#endif  // MDS_COMMON_CRC32C_H_
