#ifndef MDS_COMMON_RNG_H_
#define MDS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mds {

/// Deterministic pseudo-random number generator (xoshiro256** seeded with
/// splitmix64). All data generation and sampling in the library goes through
/// this class so experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal variate (Box–Muller, cached second value).
  double NextGaussian();

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  /// Fisher–Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<uint64_t> Permutation(uint64_t n);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mds

#endif  // MDS_COMMON_RNG_H_
