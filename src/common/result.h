#ifndef MDS_COMMON_RESULT_H_
#define MDS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mds {

/// Result<T> holds either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = *r;
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Implicit so functions can
  /// `return value;` directly.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Implicit so functions
  /// can `return Status::...;` directly.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accesses the value; must only be called when ok().
  const T& operator*() const& {
    assert(ok());
    return *value_;
  }
  T& operator*() & {
    assert(ok());
    return *value_;
  }
  T&& operator*() && {
    assert(ok());
    return std::move(*value_);
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

  /// Moves the value out; must only be called when ok().
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mds

/// Assigns the value of a Result-returning expression to `lhs`, or
/// propagates its error status.
#define MDS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(*tmp)

#define MDS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MDS_ASSIGN_OR_RETURN_NAME(a, b) MDS_ASSIGN_OR_RETURN_CONCAT(a, b)
#define MDS_ASSIGN_OR_RETURN(lhs, expr) \
  MDS_ASSIGN_OR_RETURN_IMPL(MDS_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, expr)

#endif  // MDS_COMMON_RESULT_H_
