#ifndef MDS_COMMON_STATUS_H_
#define MDS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace mds {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB idiom: library code reports failures through Status values
/// instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kUnavailable,  ///< transient I/O failure; safe to retry (EINTR, EAGAIN)
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,  ///< a caller-supplied deadline elapsed before completion
};

/// Returns a human-readable name for a status code, e.g. "IOError".
std::string_view StatusCodeToString(StatusCode code);

/// A Status carries either success (OK) or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation); error statuses carry a
/// heap-allocated message. Functions that produce a value use Result<T>
/// (see result.h) instead.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for failures that a bounded retry may clear (kUnavailable, and
  /// kDeadlineExceeded — the work may complete within a fresh deadline).
  bool IsTransient() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns `status` with "<context>: " prepended to its message (no-op for
/// OK). Every storage error site uses this to carry the file path and page
/// id outward, so a failure deep in the pager surfaces as e.g.
///   IOError: ReadPage(id=17, file '/data/sky.db'): short read
/// instead of a bare "short read".
Status AnnotateStatus(const Status& status, std::string_view context);

}  // namespace mds

/// Propagates a non-OK Status from the evaluated expression.
#define MDS_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::mds::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // MDS_COMMON_STATUS_H_
