#include "common/slab_pool.h"

#include <cstring>
#include <thread>

#include "common/logging.h"

namespace mds {

namespace {

/// Number of size classes: 256, 512, ..., 1 MiB.
constexpr size_t kNumClasses = 13;

/// Slices carved out of one slab allocation. Bounded so the largest class
/// still slabs (16 MiB per 1 MiB-class slab) without hoarding memory for
/// classes the workload never touches — a slab is only allocated when its
/// class's free list runs dry.
constexpr size_t kSlicesPerSlab = 16;

size_t ClassBytes(size_t cls) { return SlabPool::kMinSliceBytes << cls; }

}  // namespace

/// Slice bookkeeping, stored inline ahead of the payload bytes. For pooled
/// slices the owning stripe/class route the last unref back to the right
/// free list; oversize slices (stripe == nullptr) free their one-off
/// allocation instead.
struct SlabPool::Slice::Control {
  std::atomic<uint32_t> refs{1};
  uint32_t cls = 0;             ///< size class (pooled slices)
  size_t capacity = 0;
  size_t size = 0;
  SlabPool* pool = nullptr;
  Stripe* stripe = nullptr;     ///< nullptr = oversize one-off
  Control* next_free = nullptr; ///< stripe free-list link

  uint8_t* payload() { return reinterpret_cast<uint8_t*>(this + 1); }
};

/// One lock domain: per-class singly-linked free lists of idle slices plus
/// ownership of every slab carved for this stripe.
struct SlabPool::Stripe {
  std::mutex mu;
  Slice::Control* free_lists[kNumClasses] = {};
  std::vector<std::unique_ptr<uint8_t[]>> slabs;
};

uint8_t* SlabPool::Slice::data() { return ctl_->payload(); }
const uint8_t* SlabPool::Slice::data() const { return ctl_->payload(); }
size_t SlabPool::Slice::size() const { return ctl_ != nullptr ? ctl_->size : 0; }
size_t SlabPool::Slice::capacity() const {
  return ctl_ != nullptr ? ctl_->capacity : 0;
}

void SlabPool::Slice::set_size(size_t n) {
  MDS_DCHECK(ctl_ != nullptr && n <= ctl_->capacity);
  ctl_->size = n;
}

void SlabPool::Slice::Ref() {
  if (ctl_ != nullptr) ctl_->refs.fetch_add(1, std::memory_order_relaxed);
}

void SlabPool::Slice::Reset() {
  if (ctl_ == nullptr) return;
  // Release ordering so the payload writes of the dropping owner are
  // visible to whoever recycles the slice; the matching acquire is the
  // final decrement's fence.
  if (ctl_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    SlabPool::Release(ctl_);
  }
  ctl_ = nullptr;
}

SlabPool::SlabPool(size_t stripes) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

SlabPool::~SlabPool() = default;

SlabPool& SlabPool::Global() {
  // Leaked: reply slices queued on sockets may outlive any static
  // destruction order the process tears down with.
  static SlabPool* pool = new SlabPool();
  return *pool;
}

size_t SlabPool::ClassForSize(size_t n) {
  size_t cls = 0;
  while (ClassBytes(cls) < n) ++cls;
  return cls;
}

SlabPool::Slice SlabPool::Allocate(size_t n) {
  if (n == 0) return Slice();
  allocations_.fetch_add(1, std::memory_order_relaxed);
  live_slices_.fetch_add(1, std::memory_order_relaxed);

  if (n > kMaxSliceBytes) {
    // One-off heap fallback behind the same refcounted handle.
    oversize_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_use_.fetch_add(n, std::memory_order_relaxed);
    uint8_t* raw = new uint8_t[sizeof(Slice::Control) + n];
    auto* ctl = new (raw) Slice::Control();
    ctl->capacity = n;
    ctl->size = n;
    ctl->pool = this;
    return Slice(ctl);
  }

  const size_t cls = ClassForSize(n);
  // Shard-affine stripe choice: a thread keeps hashing to the same stripe,
  // so its free list stays warm in its cache.
  const size_t stripe_idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      stripes_.size();
  Stripe* stripe = stripes_[stripe_idx].get();

  Slice::Control* ctl = nullptr;
  bool recycled = false;
  {
    std::lock_guard<std::mutex> lock(stripe->mu);
    ctl = stripe->free_lists[cls];
    if (ctl != nullptr) {
      stripe->free_lists[cls] = ctl->next_free;
      recycled = true;
    } else {
      // Carve a fresh slab into kSlicesPerSlab slices; hand out the first
      // and chain the rest onto the free list.
      const size_t slice_bytes = sizeof(Slice::Control) + ClassBytes(cls);
      auto slab = std::make_unique<uint8_t[]>(kSlicesPerSlab * slice_bytes);
      uint8_t* base = slab.get();
      stripe->slabs.push_back(std::move(slab));
      for (size_t i = kSlicesPerSlab; i-- > 0;) {
        auto* c = new (base + i * slice_bytes) Slice::Control();
        c->cls = static_cast<uint32_t>(cls);
        c->capacity = ClassBytes(cls);
        c->pool = this;
        c->stripe = stripe;
        c->refs.store(0, std::memory_order_relaxed);
        if (i == 0) {
          ctl = c;
        } else {
          c->next_free = stripe->free_lists[cls];
          stripe->free_lists[cls] = c;
        }
      }
    }
  }
  if (recycled) recycles_.fetch_add(1, std::memory_order_relaxed);
  ctl->refs.store(1, std::memory_order_relaxed);
  ctl->size = n;
  ctl->next_free = nullptr;
  bytes_in_use_.fetch_add(ctl->capacity, std::memory_order_relaxed);
  return Slice(ctl);
}

void SlabPool::Release(Slice::Control* ctl) {
  SlabPool* pool = ctl->pool;
  pool->live_slices_.fetch_sub(1, std::memory_order_relaxed);
  pool->bytes_in_use_.fetch_sub(ctl->capacity, std::memory_order_relaxed);
  if (ctl->stripe == nullptr) {
    // Oversize one-off: placement-destroyed with its allocation.
    ctl->~Control();
    delete[] reinterpret_cast<uint8_t*>(ctl);
    return;
  }
  Stripe* stripe = ctl->stripe;
  const size_t cls = ctl->cls;
  std::lock_guard<std::mutex> lock(stripe->mu);
  ctl->next_free = stripe->free_lists[cls];
  stripe->free_lists[cls] = ctl;
}

SlabPool::StatsSnapshot SlabPool::Stats() const {
  StatsSnapshot s;
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.recycles = recycles_.load(std::memory_order_relaxed);
  s.oversize = oversize_.load(std::memory_order_relaxed);
  s.live_slices = live_slices_.load(std::memory_order_relaxed);
  s.bytes_in_use = bytes_in_use_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mds
