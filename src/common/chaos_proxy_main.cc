// chaosproxy — standalone fault-injecting TCP proxy for one backend link.
//
//   chaosproxy --target=HOST:PORT [--port-file=PATH] [--seed=N]
//              [--reset-prob=P] [--reset-after-frames=N]
//              [--blackhole-prob=P] [--latency-ms=N] [--jitter-ms=N]
//              [--throttle-bps=N] [--truncate-prob=P] [--bitflip-prob=P]
//
// Listens on an ephemeral loopback port (written to --port-file, printed
// to stdout) and forwards mds wire frames to the target with faults
// injected per the flags. Used by the CI server-smoke chaos phase to put
// a deterministic bad network between mdsc and an mdsd replica; the
// library tests use the ChaosProxy class in-process instead. SIGTERM or
// SIGINT exits cleanly.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/chaos_proxy.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: chaosproxy --target=HOST:PORT [--port-file=PATH] [--seed=N]\n"
      "                  [--reset-prob=P] [--reset-after-frames=N]\n"
      "                  [--blackhole-prob=P] [--latency-ms=N] "
      "[--jitter-ms=N]\n"
      "                  [--throttle-bps=N] [--truncate-prob=P] "
      "[--bitflip-prob=P]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::string port_file;
  uint64_t seed = 1;
  mds::ChaosPolicy policy;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--target", &v)) {
      target = v;
    } else if (ParseFlag(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      seed = std::stoull(v);
    } else if (ParseFlag(argv[i], "--reset-prob", &v)) {
      policy.reset_probability = std::stod(v);
    } else if (ParseFlag(argv[i], "--reset-after-frames", &v)) {
      policy.reset_after_request_frames = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--blackhole-prob", &v)) {
      policy.blackhole_probability = std::stod(v);
    } else if (ParseFlag(argv[i], "--latency-ms", &v)) {
      policy.latency_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--jitter-ms", &v)) {
      policy.jitter_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--throttle-bps", &v)) {
      policy.throttle_bytes_per_sec = std::stoull(v);
    } else if (ParseFlag(argv[i], "--truncate-prob", &v)) {
      policy.truncate_probability = std::stod(v);
    } else if (ParseFlag(argv[i], "--bitflip-prob", &v)) {
      policy.bitflip_probability = std::stod(v);
    } else {
      return Usage();
    }
  }

  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= target.size()) {
    return Usage();
  }
  const std::string host = target.substr(0, colon);
  const unsigned long port = std::stoul(target.substr(colon + 1));
  if (port == 0 || port > 65535) return Usage();

  mds::ChaosProxy proxy(host, static_cast<uint16_t>(port), seed, policy);
  mds::Status started = proxy.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "chaosproxy: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("chaosproxy: 127.0.0.1:%u -> %s (seed %llu)\n",
              static_cast<unsigned>(proxy.port()), target.c_str(),
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(proxy.port()));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "chaosproxy: cannot write port file %s\n",
                   port_file.c_str());
      return 1;
    }
  }

  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);
  }

  const mds::ChaosProxy::Counters c = proxy.counters();
  proxy.Shutdown();
  std::fprintf(stderr,
               "chaosproxy: accepted=%llu reset=%llu blackholed=%llu "
               "frames_in=%llu frames_out=%llu truncated=%llu "
               "bitflipped=%llu\n",
               static_cast<unsigned long long>(c.connections_accepted),
               static_cast<unsigned long long>(c.connections_reset),
               static_cast<unsigned long long>(c.connections_blackholed),
               static_cast<unsigned long long>(c.frames_in),
               static_cast<unsigned long long>(c.frames_out),
               static_cast<unsigned long long>(c.frames_truncated),
               static_cast<unsigned long long>(c.frames_bitflipped));
  return 0;
}
