#include "common/chaos_proxy.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

namespace mds {

namespace {

/// Wire-frame prefix layout (kept in lockstep with docs/PROTOCOL.md and
/// src/server/protocol.h; the proxy lives below the server layer, so it
/// carries its own copy of the three constants it needs).
constexpr uint32_t kFrameMagic = 0x3151444Du;
constexpr size_t kFramePrefixBytes = 12;
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Forwarding chunk for the throttled direction: small enough that the
/// inter-chunk sleeps approximate a continuous bandwidth cap.
constexpr size_t kThrottleChunkBytes = 4096;

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

ChaosProxy::ChaosProxy(std::string target_host, uint16_t target_port,
                       uint64_t seed, const ChaosPolicy& policy)
    : target_host_(std::move(target_host)),
      target_port_(target_port),
      policy_(policy),
      rng_(seed) {}

ChaosProxy::~ChaosProxy() { Shutdown(); }

Status ChaosProxy::Start() {
  if (started_) return Status::FailedPrecondition("ChaosProxy started twice");
  auto listener = TcpListener::Listen(0);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  stop_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void ChaosProxy::SetPolicy(const ChaosPolicy& policy) {
  std::lock_guard<std::mutex> lock(policy_mu_);
  policy_ = policy;
}

ChaosPolicy ChaosProxy::policy() const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  return policy_;
}

ChaosProxy::Counters ChaosProxy::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void ChaosProxy::Shutdown() {
  if (!started_) return;
  stop_.store(true);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    for (auto& link : links_) {
      link->client.ShutdownBoth();
      if (link->server.valid()) link->server.ShutdownBoth();
    }
    for (auto& link : links_) {
      if (link->client_to_server.joinable()) link->client_to_server.join();
      if (link->server_to_client.joinable()) link->server_to_client.join();
    }
    links_.clear();
  }
  started_ = false;
}

double ChaosProxy::NextDraw() {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.NextDouble();
}

uint64_t ChaosProxy::NextBounded(uint64_t bound) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.NextBounded(bound);
}

void ChaosProxy::ReapDeadLinks() {
  std::lock_guard<std::mutex> lock(links_mu_);
  for (auto it = links_.begin(); it != links_.end();) {
    Link* link = it->get();
    if (link->dead.load(std::memory_order_acquire) &&
        link->pumps_running.load(std::memory_order_acquire) == 0) {
      if (link->client_to_server.joinable()) link->client_to_server.join();
      if (link->server_to_client.joinable()) link->server_to_client.join();
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosProxy::AcceptLoop() {
  while (!stop_.load()) {
    auto sock = listener_.Accept(IoDeadline::After(250));
    if (!sock.ok()) {
      ReapDeadLinks();
      continue;  // deadline tick or listener shutdown
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections_accepted;
    }

    // Per-connection fate draws, in a fixed order so a seed replays them.
    const ChaosPolicy policy = this->policy();
    const bool reset = NextDraw() < policy.reset_probability;
    const bool blackhole = !reset && NextDraw() < policy.blackhole_probability;

    auto link = std::make_unique<Link>();
    link->client = std::move(*sock);
    (void)link->client.SetNoDelay();
    Link* raw = link.get();
    {
      std::lock_guard<std::mutex> lock(links_mu_);
      links_.push_back(std::move(link));
    }
    RunLink(raw, blackhole, reset && policy.reset_after_request_frames == 0,
            reset ? policy.reset_after_request_frames : 0);
    ReapDeadLinks();
  }
}

void ChaosProxy::RunLink(Link* link, bool blackhole, bool reset_now,
                         uint32_t reset_after_frames) {
  if (reset_now) {
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections_reset;
    }
    link->client.ShutdownBoth();
    link->dead.store(true, std::memory_order_release);
    return;
  }

  if (blackhole) {
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections_blackholed;
    }
    // Accept-then-stall: drain the client's bytes into the void so its
    // writes always succeed, and never answer. Only the client's own
    // deadline (or our shutdown) ends this.
    link->pumps_running.store(1, std::memory_order_release);
    link->client_to_server = std::thread([this, link] {
      uint8_t sink[4096];
      for (;;) {
        Status st = link->client.ReadFull(sink, 1, IoDeadline::Infinite());
        if (!st.ok()) break;
        // Opportunistically swallow whatever else is queued, 1 byte at a
        // time is enough given frames are small and this is a stall path.
      }
      link->pumps_running.fetch_sub(1, std::memory_order_acq_rel);
      link->dead.store(true, std::memory_order_release);
    });
    return;
  }

  auto server = TcpConnect(target_host_, target_port_, /*timeout_millis=*/2000);
  if (!server.ok()) {
    // Backend genuinely down: behave like it (refuse by closing).
    link->client.ShutdownBoth();
    link->dead.store(true, std::memory_order_release);
    return;
  }
  link->server = std::move(*server);

  link->pumps_running.store(2, std::memory_order_release);
  link->client_to_server = std::thread([this, link, reset_after_frames] {
    Pump(link, &link->client, &link->server, /*client_to_server=*/true,
         reset_after_frames);
    link->pumps_running.fetch_sub(1, std::memory_order_acq_rel);
    link->dead.store(true, std::memory_order_release);
  });
  link->server_to_client = std::thread([this, link] {
    Pump(link, &link->server, &link->client, /*client_to_server=*/false,
         /*reset_after_frames=*/0);
    link->pumps_running.fetch_sub(1, std::memory_order_acq_rel);
    link->dead.store(true, std::memory_order_release);
  });
}

Status ChaosProxy::ReadWholeFrame(Socket* from, std::vector<uint8_t>* frame) {
  frame->resize(kFramePrefixBytes);
  MDS_RETURN_NOT_OK(
      from->ReadFull(frame->data(), kFramePrefixBytes, IoDeadline::Infinite()));
  const uint32_t magic = ReadU32(frame->data());
  const uint32_t length = ReadU32(frame->data() + 4);
  if (magic != kFrameMagic || length > kMaxPayloadBytes) {
    return Status::InvalidArgument("chaos proxy: stream is not mds frames");
  }
  frame->resize(kFramePrefixBytes + length);
  return from->ReadFull(frame->data() + kFramePrefixBytes, length,
                        IoDeadline::Infinite());
}

Status ChaosProxy::ForwardBytes(Socket* to, const uint8_t* data, size_t len,
                                bool throttled) {
  const ChaosPolicy policy = this->policy();
  if (!throttled || policy.throttle_bytes_per_sec == 0) {
    return to->WriteFull(data, len, IoDeadline::Infinite());
  }
  size_t sent = 0;
  while (sent < len) {
    const size_t chunk = std::min(kThrottleChunkBytes, len - sent);
    MDS_RETURN_NOT_OK(to->WriteFull(data + sent, chunk, IoDeadline::Infinite()));
    sent += chunk;
    const uint64_t sleep_ms =
        chunk * 1000 / std::max<uint64_t>(1, policy.throttle_bytes_per_sec);
    if (sleep_ms > 0 && sent < len) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
  return Status::OK();
}

void ChaosProxy::Pump(Link* link, Socket* from, Socket* to,
                      bool client_to_server, uint32_t reset_after_frames) {
  uint64_t frames = 0;
  for (;;) {
    std::vector<uint8_t> frame;
    if (!ReadWholeFrame(from, &frame).ok()) break;

    const ChaosPolicy policy = this->policy();
    if (client_to_server) {
      if (observer_) {
        const std::vector<uint8_t> payload(frame.begin() + kFramePrefixBytes,
                                           frame.end());
        observer_(payload);
      }
      if (policy.latency_ms != 0 || policy.jitter_ms != 0) {
        uint64_t delay = policy.latency_ms;
        if (policy.jitter_ms != 0) delay += NextBounded(policy.jitter_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    } else {
      if (policy.truncate_probability > 0.0 &&
          NextDraw() < policy.truncate_probability) {
        // Forward a strict prefix of the frame, then kill the link: the
        // receiver sees a mid-frame close.
        const size_t keep =
            1 + static_cast<size_t>(NextBounded(frame.size() - 1));
        (void)ForwardBytes(to, frame.data(), keep, /*throttled=*/false);
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.frames_truncated;
        }
        break;
      }
      if (policy.bitflip_probability > 0.0 &&
          NextDraw() < policy.bitflip_probability &&
          frame.size() > kFramePrefixBytes) {
        // Flip one payload bit: the frame CRC no longer matches, so the
        // receiver must detect transit corruption, not decode garbage.
        const size_t payload_len = frame.size() - kFramePrefixBytes;
        const uint64_t bit = NextBounded(payload_len * 8);
        frame[kFramePrefixBytes + bit / 8] ^=
            static_cast<uint8_t>(1u << (bit % 8));
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.frames_bitflipped;
      }
    }

    if (!ForwardBytes(to, frame.data(), frame.size(), !client_to_server).ok()) {
      break;
    }
    ++frames;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      if (client_to_server) {
        ++counters_.frames_in;
      } else {
        ++counters_.frames_out;
      }
    }

    if (client_to_server && reset_after_frames != 0 &&
        frames >= reset_after_frames) {
      // Mid-conversation kill: the request went out, the reply never
      // comes back. Nastier than a refused connect because the peer has
      // state in flight.
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections_reset;
      break;
    }
  }
  // Sever both directions: a one-direction close must not leave the
  // other pump (or either peer) waiting forever.
  link->client.ShutdownBoth();
  if (link->server.valid()) link->server.ShutdownBoth();
}

}  // namespace mds
