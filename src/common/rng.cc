#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace mds {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0, 1] so log is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double lambda) {
  double u = 1.0 - NextDouble();
  return -std::log(u) / lambda;
}

std::vector<uint64_t> Rng::Permutation(uint64_t n) {
  std::vector<uint64_t> p(n);
  for (uint64_t i = 0; i < n; ++i) p[i] = i;
  Shuffle(p);
  return p;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  // Floyd's algorithm: O(k) expected insertions, no O(n) allocation.
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextBounded(j + 1);
    bool seen = false;
    for (uint64_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  Shuffle(out);
  return out;
}

}  // namespace mds
