#include "common/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <limits>

// A peer that closes mid-reply must surface as a Status, never SIGPIPE
// (which kills the process by default). Linux suppresses the signal per
// send() via MSG_NOSIGNAL; BSD/macOS lack that flag but offer the
// per-socket SO_NOSIGPIPE option instead — so the flag compiles away to 0
// there and DisableSigpipe() below covers the socket at creation.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace mds {

namespace {

Status Errno(const char* op) {
  return Status::IOError(std::string(op) + ": " + strerror(errno));
}

/// Best-effort SO_NOSIGPIPE on platforms that have it (no-op elsewhere).
void DisableSigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

/// Waits for `events` on fd, bounded by deadline. OK when ready;
/// kUnavailable on deadline expiry.
Status PollFor(int fd, short events, const IoDeadline& deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout = deadline.PollTimeoutMillis();
    const int rc = poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Unavailable("socket deadline expired");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

int IoDeadline::PollTimeoutMillis() const {
  if (!has_deadline_) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (now >= at_) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(at_ - now).count();
  return static_cast<int>(
      std::min<long long>(ms + 1, std::numeric_limits<int>::max()));
}

Status Socket::ReadFull(void* buf, size_t n, const IoDeadline& deadline) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    MDS_RETURN_NOT_OK(PollFor(fd_, POLLIN, deadline));
    const ssize_t rc = recv(fd_, p + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      // Peer closed. A close on a frame boundary (zero bytes of the next
      // frame read) is the normal end of a connection, distinguishable
      // from a mid-frame truncation.
      return done == 0 ? Status::NotFound("connection closed")
                       : Status::Unavailable("connection closed mid-read");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
    return Errno("recv");
  }
  return Status::OK();
}

Status Socket::WriteFull(const void* buf, size_t n, const IoDeadline& deadline) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    MDS_RETURN_NOT_OK(PollFor(fd_, POLLOUT, deadline));
    const ssize_t rc = send(fd_, p + done, n - done, MSG_NOSIGNAL);
    if (rc >= 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::Unavailable("connection closed mid-write");
    }
    return Errno("send");
  }
  return Status::OK();
}

Status Socket::SetNoDelay() {
  const int one = 1;
  if (setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status Socket::SetNonBlocking() {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) shutdown(fd_, SHUT_RD);
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Listen(uint16_t port, int backlog) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  const int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(fd, backlog) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }

  TcpListener listener;
  listener.socket_ = std::move(sock);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> TcpListener::Accept(const IoDeadline& deadline) {
  for (;;) {
    MDS_RETURN_NOT_OK(PollFor(socket_.fd(), POLLIN, deadline));
    const int fd = accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      DisableSigpipe(fd);
      return Socket(fd);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;
    }
    if (errno == EINVAL) {
      // listen socket shut down from another thread
      return Status::Unavailable("listener shut down");
    }
    return Errno("accept");
  }
}

Result<Socket> TcpListener::AcceptNonBlocking() {
  for (;;) {
    const int fd = accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      DisableSigpipe(fd);
      return Socket(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // Descriptor/buffer exhaustion: the pending connection stays queued,
      // so returning to the event loop without backing off would spin.
      return Status::ResourceExhausted(Errno("accept").message());
    }
    if (errno == EINVAL) {
      return Status::Unavailable("listener shut down");
    }
    return Errno("accept");
  }
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port,
                          uint64_t timeout_millis) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  DisableSigpipe(fd);

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("TcpConnect: bad IPv4 address '" + host +
                                   "'");
  }

  // Non-blocking connect bounded by the timeout, then back to blocking
  // mode (per-call deadlines come from poll, not fd state).
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl");
  }
  int rc = connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc != 0) {
    const IoDeadline deadline = timeout_millis == 0
                                    ? IoDeadline::Infinite()
                                    : IoDeadline::After(timeout_millis);
    Status ready = PollFor(fd, POLLOUT, deadline);
    if (!ready.ok()) {
      return AnnotateStatus(ready, "TcpConnect");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Unavailable(std::string("connect: ") + strerror(err));
    }
  }
  if (fcntl(fd, F_SETFL, flags) != 0) return Errno("fcntl");

  MDS_RETURN_NOT_OK(sock.SetNoDelay());
  return sock;
}

}  // namespace mds
