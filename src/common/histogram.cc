#include "common/histogram.h"

#include <bit>
#include <cmath>
#include <limits>

namespace mds {

namespace {
constexpr size_t kSub = Histogram::kSubBucketBits;
constexpr uint64_t kSubCount = uint64_t{1} << kSub;
}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubCount) return static_cast<size_t>(value);
  // 2^e <= value < 2^(e+1), e >= kSub: octave e starts at bucket
  // (e - kSub + 1) * kSubCount and its sub-bucket is the next kSub bits
  // below the leading one.
  const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(value));
  const uint64_t sub = (value >> (e - kSub)) - kSubCount;
  return static_cast<size_t>(((e - kSub + 1) << kSub) + sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubCount) return index;
  const unsigned e = static_cast<unsigned>(index >> kSub) + kSub - 1;
  const uint64_t sub = index & (kSubCount - 1);
  return (kSubCount + sub) << (e - kSub);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index + 1 >= kNumBuckets) return std::numeric_limits<uint64_t>::max();
  return BucketLowerBound(index + 1) - 1;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = c;
    snap.count += c;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t Histogram::Snapshot::ValueAtPercentile(double p) const {
  if (count == 0 || buckets.empty()) return 0;
  if (!(p >= 0.0)) p = 0.0;  // also normalizes NaN
  if (p > 100.0) p = 100.0;
  // Nearest-rank percentile: the 1-based rank is ceil(p/100 * count).
  // Computed and clamped in double — casting a product near 2^64 straight
  // to uint64_t is undefined, and round-half-up picks rank 1 of 3 for p=34
  // where nearest-rank requires rank 2.
  const double want = std::ceil(p / 100.0 * static_cast<double>(count));
  uint64_t rank;  // p=0 maps to the first sample, p=100 to the last
  if (want < 1.0) {
    rank = 1;
  } else if (want >= static_cast<double>(count)) {
    rank = count;
  } else {
    rank = static_cast<uint64_t>(want);
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi = BucketUpperBound(i);
      // The catch-all top bucket is unbounded above; its midpoint would be
      // a meaningless ~2^63. Report its lower bound instead.
      if (hi == std::numeric_limits<uint64_t>::max()) return lo;
      return lo + (hi - lo) / 2;
    }
  }
  return BucketLowerBound(buckets.size() - 1);
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

}  // namespace mds
