// mdsctl — offline dataset lifecycle tool for mdsd.
//
//   mdsctl build --out=FILE [--n=ROWS] [--seed=S]
//                [--shard-index=I --shard-count=N]
//                [--grid] [--voronoi] [--provenance=STR] [--csv=FILE]
//   mdsctl inspect FILE
//   mdsctl verify FILE
//
// `build` generates (or ingests, with --csv) a catalog, kd-clusters it and
// writes a self-contained dataset file — manifest, point set, clustered
// point table and index chains — that `mdsd --load=FILE` serves directly.
// The file is written to FILE.tmp and renamed into place only after the
// superblock commit point, so a crashed build never leaves a file a
// server would accept.
//
// `inspect` prints the manifest of an existing file without loading the
// indexes; `verify` performs the full load a server would (checksums,
// manifest validation, kd-tree reconstruction, table attach) and exits
// non-zero if any of it fails.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/index_io.h"
#include "server/dataset.h"
#include "storage/buffer_pool.h"
#include "storage/mmap_pager.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: mdsctl build --out=FILE [--n=ROWS] [--seed=S]\n"
      "              [--shard-index=I --shard-count=N]\n"
      "              [--grid] [--voronoi] [--provenance=STR] [--csv=FILE]\n"
      "       mdsctl inspect FILE\n"
      "       mdsctl verify FILE\n");
  return 2;
}

/// Reads a CSV of float coordinates (one row per line, comma-separated,
/// '#' comment lines skipped); every row must have the same width.
mds::Result<mds::PointSet> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return mds::Status::NotFound("mdsctl: cannot open csv file '" + path +
                                 "'");
  }
  mds::PointSet points(0, 0);
  size_t dim = 0;
  std::string line;
  size_t line_no = 0;
  std::vector<float> row;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    row.clear();
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stof(cell));
      } catch (...) {
        return mds::Status::InvalidArgument(
            "mdsctl: csv line " + std::to_string(line_no) +
            ": not a number: '" + cell + "'");
      }
    }
    if (row.empty()) continue;
    if (dim == 0) {
      dim = row.size();
      points = mds::PointSet(dim, 0);
    } else if (row.size() != dim) {
      return mds::Status::InvalidArgument(
          "mdsctl: csv line " + std::to_string(line_no) + " has " +
          std::to_string(row.size()) + " columns, expected " +
          std::to_string(dim));
    }
    points.Append(row.data());
  }
  if (points.size() == 0) {
    return mds::Status::InvalidArgument("mdsctl: csv file '" + path +
                                        "' holds no rows");
  }
  return points;
}

int RunBuild(int argc, char** argv) {
  mds::DatasetFileOptions options;
  std::string out, csv;
  for (int i = 2; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--out", &v)) {
      out = v;
    } else if (ParseFlag(argv[i], "--n", &v)) {
      options.dataset.num_rows = std::stoull(v);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      options.dataset.seed = std::stoull(v);
    } else if (ParseFlag(argv[i], "--shard-index", &v)) {
      options.dataset.shard_index = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--shard-count", &v)) {
      options.dataset.shard_count = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--grid", &v)) {
      options.include_grid = true;
    } else if (ParseFlag(argv[i], "--voronoi", &v)) {
      options.include_voronoi = true;
    } else if (ParseFlag(argv[i], "--provenance", &v)) {
      options.provenance = v;
    } else if (ParseFlag(argv[i], "--csv", &v)) {
      csv = v;
    } else {
      return Usage();
    }
  }
  if (out.empty()) return Usage();

  mds::PointSet ingested(0, 0);
  if (!csv.empty()) {
    auto parsed = ReadCsv(csv);
    if (!parsed.ok()) {
      std::fprintf(stderr, "mdsctl: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    ingested = std::move(*parsed);
    options.ingest = &ingested;
  }

  // Build into FILE.tmp, rename over FILE only on success: readers (and
  // a crashed build) never observe a half-written dataset.
  const std::string tmp = out + ".tmp";
  std::remove(tmp.c_str());
  mds::Status built = mds::WriteDatasetFile(options, tmp);
  if (!built.ok()) {
    std::fprintf(stderr, "mdsctl: build failed: %s\n",
                 built.ToString().c_str());
    std::remove(tmp.c_str());
    return 1;
  }
  if (std::rename(tmp.c_str(), out.c_str()) != 0) {
    std::fprintf(stderr, "mdsctl: cannot rename %s to %s\n", tmp.c_str(),
                 out.c_str());
    std::remove(tmp.c_str());
    return 1;
  }
  std::printf("mdsctl: built %s\n", out.c_str());
  return 0;
}

int RunInspect(const std::string& path) {
  auto pager = mds::MmapPager::Open(path);
  std::unique_ptr<mds::Pager> owned;
  if (pager.ok()) {
    owned = std::move(*pager);
  } else {
    auto file = mds::FilePager::Open(path);
    if (!file.ok()) {
      std::fprintf(stderr, "mdsctl: %s\n", file.status().ToString().c_str());
      return 1;
    }
    owned = std::move(*file);
  }
  mds::BufferPool pool(owned.get(), 1024);
  auto head = mds::IndexIo::ReadSuperblock(&pool);
  if (!head.ok()) {
    std::fprintf(stderr, "mdsctl: %s\n", head.status().ToString().c_str());
    return 1;
  }
  auto manifest = mds::IndexIo::LoadManifest(&pool, *head);
  if (!manifest.ok()) {
    std::fprintf(stderr, "mdsctl: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("file:         %s\n", path.c_str());
  std::printf("pages:        %llu\n",
              static_cast<unsigned long long>(owned->NumPages()));
  std::printf("version:      %u\n", manifest->version);
  std::printf("dim:          %u\n", manifest->dim);
  std::printf("table_rows:   %llu\n",
              static_cast<unsigned long long>(manifest->table_rows));
  std::printf("total_rows:   %llu\n",
              static_cast<unsigned long long>(manifest->total_rows));
  std::printf("seed:         %llu\n",
              static_cast<unsigned long long>(manifest->seed));
  std::printf("shard:        %u/%u\n", manifest->shard_index,
              manifest->shard_count);
  std::printf("table_pages:  %llu\n",
              static_cast<unsigned long long>(manifest->table_pages.size()));
  std::printf("kdtree:       %s\n",
              manifest->kdtree_head != mds::kInvalidPageId ? "yes" : "no");
  std::printf("grid:         %s\n",
              manifest->grid_head != mds::kInvalidPageId ? "yes" : "no");
  std::printf("voronoi:      %s\n",
              manifest->voronoi_head != mds::kInvalidPageId ? "yes" : "no");
  std::printf("provenance:   %s\n", manifest->provenance.c_str());
  return 0;
}

int RunVerify(const std::string& path) {
  auto dataset = mds::ServedDataset::Load(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "mdsctl: verify failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("mdsctl: %s OK (%llu rows, dim %u, shard %u/%u, %s)\n",
              path.c_str(),
              static_cast<unsigned long long>(dataset->num_rows()),
              static_cast<unsigned>(dataset->dim()), dataset->shard_index(),
              dataset->shard_count(),
              dataset->mmap_backed() ? "mmap" : "file");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return RunBuild(argc, argv);
  if (cmd == "inspect" && argc == 3) return RunInspect(argv[2]);
  if (cmd == "verify" && argc == 3) return RunVerify(argv[2]);
  return Usage();
}
