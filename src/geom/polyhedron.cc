#include "geom/polyhedron.h"

#include <cmath>

#include "common/rng.h"

namespace mds {

Polyhedron Polyhedron::FromBox(const Box& box) {
  Polyhedron poly(box.dim());
  for (size_t j = 0; j < box.dim(); ++j) {
    std::vector<double> up(box.dim(), 0.0);
    up[j] = 1.0;
    poly.AddHalfspace(up, box.hi(j));
    std::vector<double> down(box.dim(), 0.0);
    down[j] = -1.0;
    poly.AddHalfspace(down, -box.lo(j));
  }
  return poly;
}

Polyhedron Polyhedron::BallApproximation(const std::vector<double>& center,
                                         double radius, size_t facets) {
  const size_t d = center.size();
  Polyhedron poly(d);
  auto add_tangent = [&](std::vector<double> n) {
    double norm = 0.0;
    for (double v : n) norm += v * v;
    norm = std::sqrt(norm);
    if (norm == 0.0) return;
    double offset = radius;
    for (size_t j = 0; j < d; ++j) {
      n[j] /= norm;
      offset += n[j] * center[j];
    }
    poly.AddHalfspace(std::move(n), offset);
  };
  // Axis-aligned faces first so the polyhedron is always bounded.
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> up(d, 0.0);
    up[j] = 1.0;
    add_tangent(up);
    std::vector<double> down(d, 0.0);
    down[j] = -1.0;
    add_tangent(down);
  }
  // Deterministic pseudo-random directions for the remaining facets.
  Rng rng(0xfacef00dULL + d);
  for (size_t f = 2 * d; f < facets; ++f) {
    std::vector<double> n(d);
    for (size_t j = 0; j < d; ++j) n[j] = rng.NextGaussian();
    add_tangent(std::move(n));
  }
  return poly;
}

void Polyhedron::AddHalfspace(std::vector<double> normal, double offset) {
  MDS_CHECK(normal.size() == dim_);
  halfspaces_.push_back(Halfspace{std::move(normal), offset});
}

bool Polyhedron::Contains(const float* p) const {
  for (const Halfspace& h : halfspaces_) {
    if (!h.Contains(p)) return false;
  }
  return true;
}

bool Polyhedron::Contains(const double* p) const {
  for (const Halfspace& h : halfspaces_) {
    if (!h.Contains(p)) return false;
  }
  return true;
}

BoxClass Polyhedron::Classify(const Box& box) const {
  bool inside = true;
  for (const Halfspace& h : halfspaces_) {
    // Support values of n.x over the box: pick hi when the normal component
    // is positive for the max, lo otherwise (and vice versa for the min).
    double max_dot = 0.0;
    double min_dot = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      double n = h.normal[j];
      if (n >= 0.0) {
        max_dot += n * box.hi(j);
        min_dot += n * box.lo(j);
      } else {
        max_dot += n * box.lo(j);
        min_dot += n * box.hi(j);
      }
    }
    if (min_dot > h.offset) return BoxClass::kOutside;
    if (max_dot > h.offset) inside = false;
  }
  return inside ? BoxClass::kInside : BoxClass::kPartial;
}

bool Polyhedron::ContainsAll(const PointSet& points,
                             const std::vector<uint64_t>& ids) const {
  for (uint64_t id : ids) {
    if (!Contains(points.point(id))) return false;
  }
  return true;
}

}  // namespace mds
