#include "geom/predicate.h"

#include "core/simd_dist.h"

namespace mds {

void BoxPredicate::MatchBatch(const float* rows, size_t n,
                              uint8_t* mask) const {
  BoxContainsBatch(box_->lo().data(), box_->hi().data(), rows, n,
                   box_->dim(), mask);
}

BoxClass BoxPredicate::Classify(const Box& box) const {
  if (box_->ContainsBox(box)) return BoxClass::kInside;
  if (!box_->Intersects(box)) return BoxClass::kOutside;
  return BoxClass::kPartial;
}

}  // namespace mds
