#include "geom/predicate.h"

namespace mds {

BoxClass BoxPredicate::Classify(const Box& box) const {
  if (box_->ContainsBox(box)) return BoxClass::kInside;
  if (!box_->Intersects(box)) return BoxClass::kOutside;
  return BoxClass::kPartial;
}

}  // namespace mds
