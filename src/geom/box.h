#ifndef MDS_GEOM_BOX_H_
#define MDS_GEOM_BOX_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "geom/point_set.h"

namespace mds {

/// Axis-aligned box in d dimensions: the bounding volume of kd-tree nodes,
/// grid cells and query boxes. Closed on both ends: lo <= x <= hi.
class Box {
 public:
  Box() = default;
  Box(std::vector<double> lo, std::vector<double> hi)
      : lo_(std::move(lo)), hi_(std::move(hi)) {
    MDS_DCHECK(lo_.size() == hi_.size());
  }

  /// The degenerate "empty" box ready to be Extend()ed.
  static Box Empty(size_t dim);

  /// Bounding box of a point set (lo == hi == origin for empty sets).
  static Box Bounding(const PointSet& points);

  /// Unit cube [0,1]^d.
  static Box Unit(size_t dim);

  size_t dim() const { return lo_.size(); }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }
  double lo(size_t j) const { return lo_[j]; }
  double hi(size_t j) const { return hi_[j]; }
  void set_lo(size_t j, double v) { lo_[j] = v; }
  void set_hi(size_t j, double v) { hi_[j] = v; }

  /// Grows to cover p.
  void Extend(const float* p);
  void Extend(const double* p);

  /// Expands every side by `amount` on both ends.
  void Inflate(double amount);

  bool Contains(const float* p) const;
  bool Contains(const double* p) const;

  /// True iff the boxes share at least one point (closed intersection).
  bool Intersects(const Box& other) const;

  /// True iff `other` lies entirely within this box.
  bool ContainsBox(const Box& other) const;

  /// Product of side lengths.
  double Volume() const;

  std::vector<double> Center() const;

  /// Corner k of the 2^dim corners: bit j of k selects hi (1) or lo (0)
  /// along axis j. dim() must be <= 63.
  std::vector<double> Corner(uint64_t k) const;
  void CornerInto(uint64_t k, double* out) const;

  /// Squared distance from p to the nearest point of the box (0 if inside).
  double MinSquaredDistance(const double* p) const;
  double MinSquaredDistance(const float* p) const;

  /// Squared distance from p to the farthest point of the box.
  double MaxSquaredDistance(const double* p) const;

  bool operator==(const Box& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace mds

#endif  // MDS_GEOM_BOX_H_
