#ifndef MDS_GEOM_POLYHEDRON_H_
#define MDS_GEOM_POLYHEDRON_H_

#include <vector>

#include "geom/box.h"
#include "geom/point_set.h"

namespace mds {

/// A closed halfspace {x : normal . x <= offset}.
///
/// The paper's "scientific questions are transformed into queries which are
/// hyper planes ... broken down into polyhedron queries" — each linear
/// predicate in a SkyServer-style WHERE clause (Figure 2) is one Halfspace.
struct Halfspace {
  std::vector<double> normal;
  double offset = 0.0;

  bool Contains(const float* p) const {
    double s = 0.0;
    for (size_t j = 0; j < normal.size(); ++j) s += normal[j] * p[j];
    return s <= offset;
  }
  bool Contains(const double* p) const {
    double s = 0.0;
    for (size_t j = 0; j < normal.size(); ++j) s += normal[j] * p[j];
    return s <= offset;
  }
};

/// Relation of an axis-aligned box to a convex query region.
enum class BoxClass {
  kInside,   ///< box entirely within the region
  kOutside,  ///< box entirely outside the region
  kPartial,  ///< box straddles the boundary (or undecided: conservative)
};

/// Convex polyhedron in H-representation (intersection of halfspaces).
/// This is the query type evaluated against kd-tree boxes (Figure 4) and
/// Voronoi cells (§3.4).
class Polyhedron {
 public:
  Polyhedron() = default;
  explicit Polyhedron(size_t dim) : dim_(dim) {}

  /// A polyhedron equivalent to an axis-aligned box (2*dim halfspaces).
  static Polyhedron FromBox(const Box& box);

  /// Euclidean ball approximated by `facets` tangent halfspaces whose
  /// normals are spread with a deterministic low-discrepancy scheme, plus
  /// the axis directions. Used to build query polyhedra of controlled
  /// volume in tests/benches.
  static Polyhedron BallApproximation(const std::vector<double>& center,
                                      double radius, size_t facets);

  size_t dim() const { return dim_; }
  size_t num_halfspaces() const { return halfspaces_.size(); }
  const std::vector<Halfspace>& halfspaces() const { return halfspaces_; }

  /// Adds the constraint normal . x <= offset. Normal length must be dim().
  void AddHalfspace(std::vector<double> normal, double offset);

  /// Membership test for a point.
  bool Contains(const float* p) const;
  bool Contains(const double* p) const;

  /// Classifies a box against the polyhedron.
  ///
  /// Exact "inside" test: for every halfspace the support corner in the
  /// normal direction satisfies it. Exact-per-face "outside" test: some
  /// halfspace is violated by the box's best corner. When neither holds the
  /// box is reported kPartial; this is conservative (a disjoint box whose
  /// separating hyperplane is not a polyhedron face is classed partial, and
  /// the per-point fallback then returns nothing), so query results stay
  /// exact.
  BoxClass Classify(const Box& box) const;

  /// True iff every vertex from `points` with ids in `ids` is contained.
  bool ContainsAll(const PointSet& points,
                   const std::vector<uint64_t>& ids) const;

 private:
  size_t dim_ = 0;
  std::vector<Halfspace> halfspaces_;
};

}  // namespace mds

#endif  // MDS_GEOM_POLYHEDRON_H_
