#ifndef MDS_GEOM_POINT_SET_H_
#define MDS_GEOM_POINT_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace mds {

/// A set of n points in d-dimensional space, stored contiguously in
/// row-major float precision (matching the survey's 4-byte magnitude
/// columns). Index structures hold row ids into a PointSet; coordinates are
/// promoted to double for geometry computations.
class PointSet {
 public:
  PointSet() = default;
  PointSet(size_t dim, size_t size) : dim_(dim), data_(dim * size, 0.0f) {}

  size_t dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  bool empty() const { return data_.empty(); }

  const float* point(size_t i) const {
    MDS_DCHECK(i < size());
    return &data_[i * dim_];
  }
  float* mutable_point(size_t i) {
    MDS_DCHECK(i < size());
    return &data_[i * dim_];
  }

  float coord(size_t i, size_t j) const {
    MDS_DCHECK(i < size() && j < dim_);
    return data_[i * dim_ + j];
  }
  void set_coord(size_t i, size_t j, float v) {
    MDS_DCHECK(i < size() && j < dim_);
    data_[i * dim_ + j] = v;
  }

  /// Appends one point; p must have dim() entries.
  void Append(const float* p) { data_.insert(data_.end(), p, p + dim_); }
  void Append(const double* p) {
    for (size_t j = 0; j < dim_; ++j) data_.push_back(static_cast<float>(p[j]));
  }

  void Reserve(size_t n) { data_.reserve(n * dim_); }

  const std::vector<float>& raw() const { return data_; }
  std::vector<float>& mutable_raw() { return data_; }

  /// Extracts the rows named by `ids` into a new PointSet.
  PointSet Gather(const std::vector<uint64_t>& ids) const;

 private:
  size_t dim_ = 0;
  std::vector<float> data_;
};

/// Squared Euclidean distance between two d-dimensional points.
inline double SquaredDistance(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double diff = static_cast<double>(a[j]) - static_cast<double>(b[j]);
    s += diff * diff;
  }
  return s;
}

inline double SquaredDistance(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double diff = a[j] - b[j];
    s += diff * diff;
  }
  return s;
}

inline double SquaredDistance(const double* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double diff = a[j] - static_cast<double>(b[j]);
    s += diff * diff;
  }
  return s;
}

}  // namespace mds

#endif  // MDS_GEOM_POINT_SET_H_
