#ifndef MDS_GEOM_PREDICATE_H_
#define MDS_GEOM_PREDICATE_H_

#include <cstdint>

#include "geom/box.h"
#include "geom/polyhedron.h"

namespace mds {

/// Uniform query-region interface for the execution layer: every access
/// path plans candidate row ranges against *some* convex region (a box for
/// the layered grid and TABLESAMPLE, a polyhedron for kd-tree / Voronoi /
/// full-scan queries), and the shared scanner only needs two operations on
/// it — per-point membership for `partial` ranges and box classification
/// for planning. Adapters are views: the underlying region must outlive
/// the predicate.
class SpatialPredicate {
 public:
  virtual ~SpatialPredicate() = default;

  virtual size_t dim() const = 0;

  /// Per-row membership test (the `partial`-range fallback).
  virtual bool Matches(const float* p) const = 0;

  /// Batch membership over `n` contiguous dim()-float rows:
  /// mask[i] = Matches(rows + i*dim()), bit-for-bit. The default is the
  /// scalar loop; predicates with a vector kernel (BoxPredicate) override
  /// it. Scanners call this once per decoded page instead of n virtual
  /// calls.
  virtual void MatchBatch(const float* rows, size_t n, uint8_t* mask) const {
    for (size_t i = 0; i < n; ++i) mask[i] = Matches(rows + i * dim()) ? 1 : 0;
  }

  /// Classifies a candidate bounding box against the region, with the same
  /// conservative contract as Polyhedron::Classify: kInside and kOutside
  /// are exact, undecided boxes are reported kPartial.
  virtual BoxClass Classify(const Box& box) const = 0;
};

/// View of a convex Polyhedron as a predicate.
class PolyhedronPredicate final : public SpatialPredicate {
 public:
  explicit PolyhedronPredicate(const Polyhedron* poly) : poly_(poly) {}

  size_t dim() const override { return poly_->dim(); }
  bool Matches(const float* p) const override { return poly_->Contains(p); }
  BoxClass Classify(const Box& box) const override {
    return poly_->Classify(box);
  }

  const Polyhedron& polyhedron() const { return *poly_; }

 private:
  const Polyhedron* poly_;
};

/// View of an axis-aligned Box as a predicate. Box-vs-box classification
/// is exact in all three cases.
class BoxPredicate final : public SpatialPredicate {
 public:
  explicit BoxPredicate(const Box* box) : box_(box) {}

  size_t dim() const override { return box_->dim(); }
  bool Matches(const float* p) const override { return box_->Contains(p); }
  /// SIMD interval test (core/simd_dist.h), bit-identical to
  /// Box::Contains including its NaN-counts-as-inside comparison shape.
  void MatchBatch(const float* rows, size_t n, uint8_t* mask) const override;
  BoxClass Classify(const Box& box) const override;

  const Box& box() const { return *box_; }

 private:
  const Box* box_;
};

}  // namespace mds

#endif  // MDS_GEOM_PREDICATE_H_
