#include "geom/point_set.h"

namespace mds {

PointSet PointSet::Gather(const std::vector<uint64_t>& ids) const {
  PointSet out(dim_, 0);
  out.Reserve(ids.size());
  for (uint64_t id : ids) out.Append(point(id));
  return out;
}

}  // namespace mds
