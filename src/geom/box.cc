#include "geom/box.h"

#include <algorithm>
#include <limits>

namespace mds {

Box Box::Empty(size_t dim) {
  return Box(std::vector<double>(dim, std::numeric_limits<double>::infinity()),
             std::vector<double>(dim, -std::numeric_limits<double>::infinity()));
}

Box Box::Bounding(const PointSet& points) {
  if (points.empty()) return Box::Unit(points.dim());
  Box b = Box::Empty(points.dim());
  for (size_t i = 0; i < points.size(); ++i) b.Extend(points.point(i));
  return b;
}

Box Box::Unit(size_t dim) {
  return Box(std::vector<double>(dim, 0.0), std::vector<double>(dim, 1.0));
}

void Box::Extend(const float* p) {
  for (size_t j = 0; j < dim(); ++j) {
    lo_[j] = std::min(lo_[j], static_cast<double>(p[j]));
    hi_[j] = std::max(hi_[j], static_cast<double>(p[j]));
  }
}

void Box::Extend(const double* p) {
  for (size_t j = 0; j < dim(); ++j) {
    lo_[j] = std::min(lo_[j], p[j]);
    hi_[j] = std::max(hi_[j], p[j]);
  }
}

void Box::Inflate(double amount) {
  for (size_t j = 0; j < dim(); ++j) {
    lo_[j] -= amount;
    hi_[j] += amount;
  }
}

bool Box::Contains(const float* p) const {
  for (size_t j = 0; j < dim(); ++j) {
    double v = p[j];
    if (v < lo_[j] || v > hi_[j]) return false;
  }
  return true;
}

bool Box::Contains(const double* p) const {
  for (size_t j = 0; j < dim(); ++j) {
    if (p[j] < lo_[j] || p[j] > hi_[j]) return false;
  }
  return true;
}

bool Box::Intersects(const Box& other) const {
  for (size_t j = 0; j < dim(); ++j) {
    if (hi_[j] < other.lo_[j] || other.hi_[j] < lo_[j]) return false;
  }
  return true;
}

bool Box::ContainsBox(const Box& other) const {
  for (size_t j = 0; j < dim(); ++j) {
    if (other.lo_[j] < lo_[j] || other.hi_[j] > hi_[j]) return false;
  }
  return true;
}

double Box::Volume() const {
  double v = 1.0;
  for (size_t j = 0; j < dim(); ++j) v *= std::max(0.0, hi_[j] - lo_[j]);
  return v;
}

std::vector<double> Box::Center() const {
  std::vector<double> c(dim());
  for (size_t j = 0; j < dim(); ++j) c[j] = 0.5 * (lo_[j] + hi_[j]);
  return c;
}

std::vector<double> Box::Corner(uint64_t k) const {
  std::vector<double> out(dim());
  CornerInto(k, out.data());
  return out;
}

void Box::CornerInto(uint64_t k, double* out) const {
  for (size_t j = 0; j < dim(); ++j) {
    out[j] = (k >> j) & 1 ? hi_[j] : lo_[j];
  }
}

double Box::MinSquaredDistance(const double* p) const {
  double s = 0.0;
  for (size_t j = 0; j < dim(); ++j) {
    double d = 0.0;
    if (p[j] < lo_[j]) {
      d = lo_[j] - p[j];
    } else if (p[j] > hi_[j]) {
      d = p[j] - hi_[j];
    }
    s += d * d;
  }
  return s;
}

double Box::MinSquaredDistance(const float* p) const {
  double s = 0.0;
  for (size_t j = 0; j < dim(); ++j) {
    double v = p[j];
    double d = 0.0;
    if (v < lo_[j]) {
      d = lo_[j] - v;
    } else if (v > hi_[j]) {
      d = v - hi_[j];
    }
    s += d * d;
  }
  return s;
}

double Box::MaxSquaredDistance(const double* p) const {
  double s = 0.0;
  for (size_t j = 0; j < dim(); ++j) {
    double d = std::max(std::abs(p[j] - lo_[j]), std::abs(p[j] - hi_[j]));
    s += d * d;
  }
  return s;
}

}  // namespace mds
