#ifndef MDS_SERVER_DATASET_H_
#define MDS_SERVER_DATASET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/index_io.h"
#include "core/kdtree.h"
#include "core/point_table.h"
#include "geom/point_set.h"
#include "sdss/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace mds {

/// What one mdsd process serves: a kd-tree-clustered point table over a
/// shared thread-safe BufferPool, plus the in-memory kd-tree for planning
/// and kNN. One immutable dataset, many concurrent readers — the paper's
/// serving shape (the index is rebuilt offline per data release). The
/// dataset comes from one of two sources: Build generates a synthetic
/// SDSS color catalog in memory, Load reopens a dataset file written
/// offline by `mdsctl build` (WriteDatasetFile below).
struct DatasetConfig {
  uint64_t num_rows = 1000000;
  uint64_t seed = 42;
  /// Buffer-pool capacity in pages; defaults comfortably above the table
  /// size so steady-state serving is hit-dominated.
  size_t pool_pages = 1u << 16;
  /// Shard-of-N serving (mdsd --shard-index/--shard-count behind an mdsc
  /// coordinator). Every shard generates the identical full catalog and
  /// kd-tree (both deterministic in num_rows and seed), then materializes
  /// only the clustered slice owned by the shard_index-th subtree at tree
  /// level log2(shard_count). Because the shard's tree and table keep the
  /// global clustered order and global objids verbatim
  /// (KdTreeIndex::ExtractSubtree), concatenating shard replies in shard
  /// order reproduces a single server's replies exactly. shard_count must
  /// be a power of two not exceeding the tree's leaf count; 1 = serve
  /// everything.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
};

class ServedDataset {
 public:
  struct LoadOptions {
    /// Buffer-pool capacity in pages for the reopened file.
    size_t pool_pages = 1u << 16;
    /// Serve pages from an mmap(2) mapping of the file (MmapPager);
    /// FilePager is the automatic fallback when mmap fails and the forced
    /// path when this is false.
    bool prefer_mmap = true;
  };

  /// Generates the catalog, builds the kd-tree (parallel build) and
  /// materializes the clustered table.
  static Result<ServedDataset> Build(const DatasetConfig& config);

  /// Reopens a dataset file written by WriteDatasetFile: validates the
  /// superblock and manifest, loads the full point set and kd-tree from
  /// their chains, re-extracts the manifest's shard subtree, and attaches
  /// the stored table pages — no row is re-materialized. Fails with
  /// Corruption for damaged/incomplete files and InvalidArgument for
  /// format-version mismatches (same taxonomy as IndexIo).
  static Result<ServedDataset> Load(const std::string& path,
                                    const LoadOptions& options);
  static Result<ServedDataset> Load(const std::string& path);

  const PointTableBinding& binding() const { return binding_; }
  const KdTreeIndex& tree() const { return *tree_; }
  /// The FULL point set (all shards); the tree/table may cover a slice.
  const PointSet& points() const {
    return catalog_ ? catalog_->colors : *loaded_points_;
  }
  BufferPool* pool() const { return pool_.get(); }
  size_t dim() const { return binding_.dim; }
  uint64_t num_rows() const { return binding_.table->num_rows(); }
  uint32_t shard_index() const { return shard_index_; }
  uint32_t shard_count() const { return shard_count_; }

  /// Rows in the full point set across all shards (== num_rows() when
  /// shard_count() == 1).
  uint64_t total_rows() const { return points().size(); }
  /// Generator seed (synthetic builds and files built from a seed; 0 for
  /// ingested data).
  uint64_t seed() const { return seed_; }
  /// Where the data came from, for logs: "synthetic seed=S rows=N" or
  /// "file:<path>".
  const std::string& source() const { return source_; }
  /// True when pages are served from an mmap mapping (Load with mmap).
  bool mmap_backed() const { return mmap_backed_; }

  /// Monotonically increasing dataset generation, starting at 1. The
  /// serving layer keys memoized replies by it (server/response_cache.h):
  /// bumping the epoch invalidates every cached reply with one atomic
  /// store, with no per-entry tracking.
  uint64_t epoch() const { return epoch_->load(std::memory_order_acquire); }

  /// Marks the served data as changed (reload, mutation, repaired pages).
  /// Owners call this; the server itself only reads the epoch. Const
  /// because a hot swap publishes the dataset as a shared const snapshot
  /// first and bumps after — the counter is shared state, not dataset
  /// state.
  void BumpEpoch() const { epoch_->fetch_add(1, std::memory_order_acq_rel); }

  /// Continues `prior`'s epoch sequence instead of restarting at 1, so a
  /// hot swap's bump is observable as N -> N+1 against the previous
  /// generation and cached replies keyed by any earlier epoch stay dead.
  void AdoptEpochFrom(const ServedDataset& prior) { epoch_ = prior.epoch_; }

 private:
  ServedDataset() = default;

  // Destruction order (reverse of declaration): table releases before the
  // pool, the pool flushes into the pager, the tree before its points.
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<PointSet> loaded_points_;  // Load path; catalog_ is null
  std::unique_ptr<KdTreeIndex> tree_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Table> table_;
  PointTableBinding binding_;
  uint32_t shard_index_ = 0;
  uint32_t shard_count_ = 1;
  uint64_t seed_ = 0;
  std::string source_;
  bool mmap_backed_ = false;
  // Shared (not unique) so a successor dataset can adopt the counter and
  // the epoch sequence survives hot swaps; heap-allocated so the dataset
  // stays movable (Result<ServedDataset>).
  std::shared_ptr<std::atomic<uint64_t>> epoch_ =
      std::make_shared<std::atomic<uint64_t>>(1);
};

/// Everything `mdsctl build` writes into a dataset file.
struct DatasetFileOptions {
  /// Row count, seed, shard slice and (writer-side) pool size. When
  /// `ingest` is set, num_rows/seed are ignored for generation but the
  /// shard fields still select the slice to materialize.
  DatasetConfig dataset;
  /// Optional index chains over the full point set (the kd-tree is always
  /// written; the server only needs the kd-tree, but shipping grid/Voronoi
  /// chains makes the file a complete release artifact).
  bool include_grid = false;
  bool include_voronoi = false;
  /// Free-form origin recorded in the manifest; synthesized from the
  /// config when empty.
  std::string provenance;
  /// Non-null: persist these points instead of generating a catalog
  /// (offline ingest; must outlive the call).
  const PointSet* ingest = nullptr;
};

/// Writes a complete dataset file: full point set + full kd-tree chains,
/// the shard slice materialized as a clustered table, optional grid /
/// Voronoi chains, a CRC-protected manifest, and — last, as the commit
/// point — the page-0 superblock. A crash or error at any earlier step
/// leaves a file ReadSuperblock refuses, never a loadable half-build.
/// `path` is created (truncated) via FilePager::Create; callers wanting
/// atomic replacement of an existing file write to a temp name and rename.
Status WriteDatasetFile(const DatasetFileOptions& options,
                        const std::string& path);

}  // namespace mds

#endif  // MDS_SERVER_DATASET_H_
