#ifndef MDS_SERVER_DATASET_H_
#define MDS_SERVER_DATASET_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/result.h"
#include "core/kdtree.h"
#include "core/point_table.h"
#include "sdss/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace mds {

/// What one mdsd process serves: a synthetic SDSS color catalog
/// materialized as a kd-tree-clustered point table over a shared
/// thread-safe BufferPool, plus the in-memory kd-tree for planning and
/// kNN. One immutable dataset, many concurrent readers — the paper's
/// serving shape (the index is rebuilt offline per data release).
struct DatasetConfig {
  uint64_t num_rows = 1000000;
  uint64_t seed = 42;
  /// Buffer-pool capacity in pages; defaults comfortably above the table
  /// size so steady-state serving is hit-dominated.
  size_t pool_pages = 1u << 16;
  /// Shard-of-N serving (mdsd --shard-index/--shard-count behind an mdsc
  /// coordinator). Every shard generates the identical full catalog and
  /// kd-tree (both deterministic in num_rows and seed), then materializes
  /// only the clustered slice owned by the shard_index-th subtree at tree
  /// level log2(shard_count). Because the shard's tree and table keep the
  /// global clustered order and global objids verbatim
  /// (KdTreeIndex::ExtractSubtree), concatenating shard replies in shard
  /// order reproduces a single server's replies exactly. shard_count must
  /// be a power of two not exceeding the tree's leaf count; 1 = serve
  /// everything.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
};

class ServedDataset {
 public:
  /// Generates the catalog, builds the kd-tree (parallel build) and
  /// materializes the clustered table.
  static Result<ServedDataset> Build(const DatasetConfig& config);

  const PointTableBinding& binding() const { return binding_; }
  const KdTreeIndex& tree() const { return *tree_; }
  const PointSet& points() const { return catalog_->colors; }
  BufferPool* pool() const { return pool_.get(); }
  size_t dim() const { return binding_.dim; }
  uint64_t num_rows() const { return binding_.table->num_rows(); }
  uint32_t shard_index() const { return shard_index_; }
  uint32_t shard_count() const { return shard_count_; }

  /// Monotonically increasing dataset generation, starting at 1. The
  /// serving layer keys memoized replies by it (server/response_cache.h):
  /// bumping the epoch invalidates every cached reply with one atomic
  /// store, with no per-entry tracking.
  uint64_t epoch() const { return epoch_->load(std::memory_order_acquire); }

  /// Marks the served data as changed (reload, mutation, repaired pages).
  /// Owners call this; the server itself only reads the epoch.
  void BumpEpoch() { epoch_->fetch_add(1, std::memory_order_acq_rel); }

 private:
  ServedDataset() = default;

  // Destruction order (reverse of declaration): table releases before the
  // pool, the pool flushes into the pager, the tree before its points.
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<KdTreeIndex> tree_;
  std::unique_ptr<MemPager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Table> table_;
  PointTableBinding binding_;
  uint32_t shard_index_ = 0;
  uint32_t shard_count_ = 1;
  // Heap-allocated so the dataset stays movable (Result<ServedDataset>).
  std::unique_ptr<std::atomic<uint64_t>> epoch_ =
      std::make_unique<std::atomic<uint64_t>>(1);
};

}  // namespace mds

#endif  // MDS_SERVER_DATASET_H_
