#ifndef MDS_SERVER_RESPONSE_CACHE_H_
#define MDS_SERVER_RESPONSE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/slab_pool.h"
#include "common/status.h"

namespace mds {

/// Policy gate shared by the server's populate path and its tests: only a
/// finalized OK reply that is not degraded and skipped no pages may enter
/// the cache. A degraded answer reflects a transient storage fault; caching
/// it would let the fault outlive its cause and be replayed to healthy
/// readers.
inline bool ReplyCacheable(const Status& status, bool degraded,
                           uint64_t pages_skipped) {
  return status.ok() && !degraded && pages_skipped == 0;
}

/// Byte-bounded sharded LRU memoizing served read-only replies.
///
/// The paper's workload is read-dominated: the same point counts and small
/// box queries hit the color-space indexes over and over, so a served reply
/// is an ideal memoization target. An entry is keyed by
/// `(request type, dataset epoch, canonical request body bytes)` — the body
/// bytes exclude the per-request deadline prefix, so two requests that differ
/// only in deadline share an entry — and holds the reply payload *after* the
/// message header (wire-encoded Status + body) plus the reply's extra flag
/// bits, so a hit reproduces the original reply byte for byte under the
/// requester's own request id.
///
/// The payload tail lives in a refcounted SlabPool slice: a hit hands back
/// a reference (no byte copy) that the connection's write queue pins until
/// the kernel has taken the bytes, even if the entry is evicted or replaced
/// mid-flush. Byte accounting is therefore at slice-class granularity — an
/// entry is charged the slice's *capacity* (the memory actually held), not
/// its payload length.
///
/// Invalidation is wholesale: the dataset's monotonically increasing epoch is
/// part of every key, so a reload/mutation bumps the epoch (one atomic store)
/// and every cached reply simply stops matching. Stale entries are not
/// tracked per-entry; they age out of the LRU under the byte bound.
///
/// Capacity is bounded in bytes, split evenly across shards (each shard is an
/// independent mutex + LRU list + map, so concurrent I/O threads contend
/// only when they collide on a shard). An entry whose charge alone exceeds
/// its shard's budget is rejected outright — one huge reply cannot wipe the
/// cache.
///
/// Thread safety: fully thread-safe. Lookup/Insert take one shard mutex;
/// hit/miss/insert/evict counters are relaxed atomics read by Stats().
class ResponseCache {
 public:
  /// `max_bytes` bounds the sum of entry charges (key + slice capacity +
  /// fixed overhead) across all shards. `num_shards` is clamped to >= 1;
  /// the default suits a handful of concurrent I/O threads.
  explicit ResponseCache(size_t max_bytes, size_t num_shards = 8);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// A memoized reply: the extra header flag bits the original reply
  /// carried and a reference to the payload bytes after the message
  /// header (shared with the cache entry — do not mutate).
  struct CachedReply {
    uint32_t flags = 0;
    SlabPool::Slice tail;
  };

  /// Probes `(type, epoch, body)`; on a hit references the reply into
  /// `out` (no payload copy), refreshes LRU recency and counts a hit.
  /// Counts a miss otherwise.
  bool Lookup(uint16_t type, uint64_t epoch, const uint8_t* body,
              size_t body_len, CachedReply* out);

  /// Memoizes a reply under `(type, epoch, body)`, replacing any existing
  /// entry, then evicts least-recently-used entries until the shard fits
  /// its budget. The cache takes a reference on `tail` (sharing it with
  /// the caller's copy). Oversized entries are dropped silently.
  void Insert(uint16_t type, uint64_t epoch, const uint8_t* body,
              size_t body_len, uint32_t flags, SlabPool::Slice tail);

  /// Copying convenience for callers that do not hold the tail in a slab
  /// slice (tests, legacy paths): allocates a slice and copies once.
  void Insert(uint16_t type, uint64_t epoch, const uint8_t* body,
              size_t body_len, uint32_t flags, const uint8_t* tail,
              size_t tail_len);

  struct StatsSnapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;    ///< current charged bytes, <= max_bytes
    uint64_t entries = 0;  ///< current entry count
  };
  StatsSnapshot Stats() const;

  size_t max_bytes() const { return max_bytes_; }

  /// Test hook: recomputes the byte accounting by walking every shard and
  /// summing live entry charges. Stats().bytes must equal this at every
  /// quiescent point — the accounting-drift invariant the hammer test
  /// checks after randomized replace/evict sequences.
  uint64_t DebugRecomputeBytes() const;

 private:
  struct Entry {
    std::string key;
    uint32_t flags = 0;
    SlabPool::Slice tail;
    size_t charge = 0;
  };

  /// One lock domain: MRU at the front of `lru`; `map` views alias the
  /// list entries' key storage (list nodes never move on splice).
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> map;
    size_t bytes = 0;
  };

  static std::string MakeKey(uint16_t type, uint64_t epoch,
                             const uint8_t* body, size_t body_len);
  Shard* ShardFor(std::string_view key);
  /// Unlinks one entry from `shard` (map + list + byte accounting).
  void EraseLocked(Shard* shard,
                   std::unordered_map<std::string_view,
                                      std::list<Entry>::iterator>::iterator it);

  const size_t max_bytes_;
  const size_t shard_bytes_;  // per-shard budget
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace mds

#endif  // MDS_SERVER_RESPONSE_CACHE_H_
