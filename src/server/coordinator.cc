#include "server/coordinator.h"

#include <algorithm>
#include <deque>
#include <random>
#include <utility>

#include "geom/box.h"

namespace mds {

namespace {

using protocol::MessageHeader;
using protocol::MessageType;

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Failover-retryable statuses: kUnavailable covers overload sheds,
/// draining backends, refused connects and mid-frame closes; kIOError
/// covers transport faults (e.g. a write onto a connection whose peer
/// died); kNotFound is the transport's clean-EOF code (protocol.h) — a
/// replica that crashed or reaped an idle pooled connection closes it at
/// a frame boundary, and mdsd never sends kNotFound as a reply status, so
/// during an exchange it always means "peer went away", not a semantic
/// answer. Anything else is an answer every replica would repeat (or, for
/// kDeadlineExceeded, a bound the client chose).
bool RetryableBackendFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kNotFound;
}

/// Exhaustion failures: RetryableBackendFailure plus a leg read-deadline
/// expiry. The leg bound is the coordinator's own subdivision of the
/// client's budget, so a timed-out leg may still be answered by another
/// replica within what remains — and a shard that fails this way under
/// allow_partial degrades the reply instead of failing it. A semantic
/// error (InvalidArgument, Corruption-as-answer, ...) is neither.
bool ExhaustionFailure(const Status& status) {
  return RetryableBackendFailure(status) ||
         status.code() == StatusCode::kDeadlineExceeded;
}

protocol::QueryReply FromClientResult(QueryClient::QueryResult result) {
  protocol::QueryReply out;
  out.row_count = result.row_count;
  out.objids = std::move(result.objids);
  out.rows_scanned = result.rows_scanned;
  out.pages_fetched = result.pages_fetched;
  out.pages_read = result.pages_read;
  out.pages_skipped = result.pages_skipped;
  out.degraded = result.degraded;
  out.chosen_path = std::move(result.chosen_path);
  return out;
}

}  // namespace

// --- shard map -------------------------------------------------------------

Result<ShardMap> ParseShardMap(const std::string& text) {
  ShardMap map;
  std::vector<std::string> shard_specs;
  std::string current;
  for (char c : text) {
    if (c == ';' || c == '\n') {
      shard_specs.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  shard_specs.push_back(current);

  for (const std::string& raw : shard_specs) {
    // Trim whitespace; skip blank and comment lines.
    const size_t b = raw.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const size_t e = raw.find_last_not_of(" \t\r");
    const std::string spec = raw.substr(b, e - b + 1);
    if (spec[0] == '#') continue;

    std::vector<BackendAddress> replicas;
    size_t pos = 0;
    while (pos <= spec.size()) {
      const size_t comma = spec.find(',', pos);
      std::string endpoint = spec.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;

      const size_t eb = endpoint.find_first_not_of(" \t");
      if (eb == std::string::npos) {
        return Status::InvalidArgument("ParseShardMap: empty endpoint in '" +
                                       spec + "'");
      }
      const size_t ee = endpoint.find_last_not_of(" \t");
      endpoint = endpoint.substr(eb, ee - eb + 1);

      const size_t colon = endpoint.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= endpoint.size()) {
        return Status::InvalidArgument("ParseShardMap: endpoint '" + endpoint +
                                       "' is not host:port");
      }
      BackendAddress addr;
      addr.host = endpoint.substr(0, colon);
      unsigned long port = 0;
      try {
        size_t used = 0;
        port = std::stoul(endpoint.substr(colon + 1), &used);
        if (used != endpoint.size() - colon - 1) port = 0;
      } catch (...) {
        port = 0;
      }
      if (port == 0 || port > 65535) {
        return Status::InvalidArgument("ParseShardMap: bad port in '" +
                                       endpoint + "'");
      }
      addr.port = static_cast<uint16_t>(port);
      replicas.push_back(std::move(addr));
    }
    map.shards.push_back(std::move(replicas));
  }
  if (map.shards.empty()) {
    return Status::InvalidArgument("ParseShardMap: no shards");
  }
  return map;
}

// --- merge helpers ---------------------------------------------------------

std::vector<protocol::WireNeighbor> MergeKnnNeighbors(
    const std::vector<std::vector<protocol::WireNeighbor>>& per_shard,
    uint32_t k) {
  std::vector<protocol::WireNeighbor> out;
  std::vector<size_t> cursor(per_shard.size(), 0);
  auto less = [](const protocol::WireNeighbor& a,
                 const protocol::WireNeighbor& b) {
    return a.squared_distance < b.squared_distance ||
           (a.squared_distance == b.squared_distance && a.id < b.id);
  };
  while (out.size() < k) {
    size_t best = per_shard.size();
    for (size_t s = 0; s < per_shard.size(); ++s) {
      if (cursor[s] >= per_shard[s].size()) continue;
      if (best == per_shard.size() ||
          less(per_shard[s][cursor[s]], per_shard[best][cursor[best]])) {
        best = s;
      }
    }
    if (best == per_shard.size()) break;  // every list exhausted
    out.push_back(per_shard[best][cursor[best]++]);
  }
  return out;
}

protocol::QueryReply MergeQueryReplies(
    std::vector<protocol::QueryReply> per_shard, uint64_t limit) {
  protocol::QueryReply out;
  bool first = true;
  bool mixed_path = false;
  for (protocol::QueryReply& shard : per_shard) {
    out.row_count += shard.row_count;
    out.rows_scanned += shard.rows_scanned;
    out.pages_fetched += shard.pages_fetched;
    out.pages_read += shard.pages_read;
    out.pages_skipped += shard.pages_skipped;
    out.degraded = out.degraded || shard.degraded;
    if (first) {
      out.chosen_path = shard.chosen_path;
      first = false;
    } else if (shard.chosen_path != out.chosen_path) {
      mixed_path = true;
    }
    if (out.objids.empty()) {
      out.objids = std::move(shard.objids);
    } else {
      out.objids.insert(out.objids.end(), shard.objids.begin(),
                        shard.objids.end());
    }
  }
  if (mixed_path) out.chosen_path = "mixed";
  if (limit != 0 && out.objids.size() > limit) out.objids.resize(limit);
  return out;
}

// --- fan-out pool ----------------------------------------------------------

/// A plain queue-based thread pool. TaskPool (common/parallel.h) is a
/// fork/join pool whose Run() admits one caller at a time — exactly wrong
/// for many concurrent handler threads each scattering a few jobs — so the
/// coordinator brings its own. Jobs block on network I/O (bounded by the
/// sub-request deadline), so the pool is sized to the replica count, not
/// the core count.
class Coordinator::FanoutPool {
 public:
  explicit FanoutPool(unsigned threads) {
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { Work(); });
    }
  }

  ~FanoutPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void Submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

 private:
  void Work() {
    for (;;) {
      std::function<void()> fn;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        // Drain the queue even when stopping: a handler may still be
        // waiting on a queued attempt.
        if (queue_.empty()) return;
        fn = std::move(queue_.front());
        queue_.pop_front();
      }
      fn();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// One client connection: its handler thread reads frames from it; the
/// socket is shared with Shutdown (read-side shutdown only, see Socket's
/// thread-safety note).
struct Coordinator::ClientConn {
  Socket sock;
};

// --- lifecycle -------------------------------------------------------------

Coordinator::Coordinator(const ShardMap& map, const CoordinatorConfig& config)
    : config_(config),
      rng_(config.jitter_seed != 0 ? config.jitter_seed
                                   : std::random_device{}()) {
  shards_.reserve(map.shards.size());
  for (const auto& replicas : map.shards) {
    auto shard = std::make_unique<Shard>();
    // The retry bucket starts full so cold-start failovers (a replica
    // down before any traffic has accrued tokens) are never denied.
    shard->retry_budget_milli.store(
        static_cast<int64_t>(config_.retry_budget_cap) * 1000,
        std::memory_order_relaxed);
    for (const BackendAddress& addr : replicas) {
      auto replica = std::make_unique<Replica>();
      replica->addr = addr;
      shard->replicas.push_back(std::move(replica));
    }
    shards_.push_back(std::move(shard));
  }
}

Coordinator::~Coordinator() { Shutdown(); }

Status Coordinator::Start() {
  if (started_) return Status::FailedPrecondition("Coordinator started twice");
  if (shards_.empty()) {
    return Status::InvalidArgument("Coordinator: empty shard map");
  }
  for (const auto& shard : shards_) {
    if (shard->replicas.empty()) {
      return Status::InvalidArgument("Coordinator: shard with no replicas");
    }
  }

  // Probe each shard: the first reachable replica (in preference order)
  // reports the shard's row count and dimension. Probes do not touch the
  // failure/backoff state — health is driven by request traffic.
  QueryOptions probe;
  probe.deadline_ms = config_.sub_deadline_ms;
  served_rows_ = 0;
  dim_ = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = shards_[s].get();
    Status last = Status::Unavailable("no replica probed");
    bool probed = false;
    for (const auto& replica : shard->replicas) {
      auto client = QueryClient::Connect(
          replica->addr.host, replica->addr.port, config_.connect_timeout_ms);
      if (!client.ok()) {
        last = client.status();
        continue;
      }
      auto health = client->Health(probe);
      if (!health.ok()) {
        last = health.status();
        continue;
      }
      shard->served_rows = health->served_rows;
      if (dim_ == 0) {
        dim_ = health->dim;
      } else if (health->dim != dim_) {
        return Status::InvalidArgument(
            "Coordinator: shard " + std::to_string(s) + " serves dimension " +
            std::to_string(health->dim) + ", expected " + std::to_string(dim_));
      }
      ReleaseClient(replica.get(), std::move(*client));
      probed = true;
      break;
    }
    if (!probed) {
      return AnnotateStatus(last, "Coordinator: shard " + std::to_string(s) +
                                      " has no reachable replica");
    }
    served_rows_ += shard->served_rows;
  }

  unsigned fanout = config_.fanout_threads;
  if (fanout == 0) {
    size_t total_replicas = 0;
    for (const auto& shard : shards_) total_replicas += shard->replicas.size();
    fanout = static_cast<unsigned>(
        std::min<size_t>(32, std::max<size_t>(4, 2 * total_replicas)));
  }
  fanout_ = std::make_unique<FanoutPool>(fanout);

  auto listener = TcpListener::Listen(config_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  state_.store(State::kRunning);
  stop_accept_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void Coordinator::RequestDrain() {
  State expected = State::kRunning;
  state_.compare_exchange_strong(expected, State::kDraining);
}

void Coordinator::Shutdown() {
  if (!started_) return;
  RequestDrain();

  stop_accept_.store(true);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every handler's read loop; in-flight replies still flush
  // (the write direction stays open until the handler closes its socket).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->sock.ShutdownRead();
  }
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }

  fanout_.reset();  // drains queued attempts, joins pool threads
  for (auto& shard : shards_) {
    for (auto& replica : shard->replicas) {
      std::lock_guard<std::mutex> lock(replica->mu);
      replica->idle.clear();
    }
  }
  state_.store(State::kStopped);
  started_ = false;
}

void Coordinator::AcceptLoop() {
  while (!stop_accept_.load()) {
    auto sock = listener_.Accept(IoDeadline::After(250));
    if (!sock.ok()) continue;  // deadline tick or listener shutdown
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    size_t open = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      open = conns_.size();
    }
    if (draining() || open >= config_.max_connections) {
      counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      continue;  // Socket destructor closes the connection
    }
    (void)sock->SetNoDelay();
    auto conn = std::make_shared<ClientConn>();
    conn->sock = std::move(*sock);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    handler_threads_.emplace_back(
        [this, conn]() mutable { HandleConnection(std::move(conn)); });
  }
}

void Coordinator::HandleConnection(std::shared_ptr<ClientConn> conn) {
  for (;;) {
    std::vector<uint8_t> payload;
    const IoDeadline deadline =
        config_.idle_timeout_ms == 0
            ? IoDeadline::Infinite()
            : IoDeadline::After(config_.idle_timeout_ms);
    uint64_t frame_bytes = 0;
    Status st =
        protocol::ReadFrame(&conn->sock, deadline, &payload, &frame_bytes);
    counters_.bytes_in.fetch_add(frame_bytes, std::memory_order_relaxed);
    if (!st.ok()) {
      if (st.code() == StatusCode::kInvalidArgument ||
          st.code() == StatusCode::kCorruption) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      break;  // clean close, idle timeout, mid-frame close or violation
    }
    if (!HandleFrame(conn.get(), std::move(payload))) break;
  }
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  {
    // Deregister before touching the fd: Shutdown() calls ShutdownRead()
    // on every socket still registered (under conns_mu_), so the socket
    // must leave the registry before Close() invalidates it.
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
  }
  conn->sock.Close();
}

bool Coordinator::HandleFrame(ClientConn* conn, std::vector<uint8_t> payload) {
  WireReader r(payload);
  MessageHeader header;
  if (!protocol::DecodeMessageHeader(&r, &header).ok()) {
    // Bad version or truncated header: the stream cannot be trusted.
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  counters_.requests_total.fetch_add(1, std::memory_order_relaxed);

  if (header.type == MessageType::kHealth) {
    HandleHealth(conn, header);
    return true;
  }
  if (header.type == MessageType::kStats) {
    HandleStats(conn, header);
    return true;
  }
  if (header.type == MessageType::kReload) {
    // Admin request: body is the deadline prefix + the reload body.
    const uint32_t deadline_ms = r.GetU32();
    if (!r.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    protocol::ReloadRequest reload;
    Status decoded = protocol::DecodeReloadRequest(&r, &reload);
    if (decoded.ok()) decoded = r.ExpectEnd();
    if (!decoded.ok()) {
      WriteReplyFrame(conn, header, decoded, 0, nullptr);
      return true;
    }
    HandleReload(conn, header, reload, deadline_ms);
    return true;
  }
  if (protocol::TypeIndex(header.type) >= protocol::kNumRequestTypes) {
    WriteReplyFrame(conn, header,
                    Status::InvalidArgument(
                        "unknown message type " +
                        std::to_string(static_cast<int>(header.type))),
                    0, nullptr);
    return true;
  }

  // Query request: the body starts with the u32 deadline prefix.
  const uint32_t deadline_ms = r.GetU32();
  if (!r.ok()) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const size_t body_offset = payload.size() - r.remaining();
  HandleQuery(conn, header, payload, body_offset, deadline_ms);
  return true;
}

void Coordinator::HandleHealth(ClientConn* conn, const MessageHeader& header) {
  const auto arrival = std::chrono::steady_clock::now();
  protocol::HealthReply reply;
  reply.draining = draining() ? 1 : 0;
  reply.served_rows = served_rows_;
  reply.dim = dim_;
  const uint32_t flags = reply.draining ? protocol::kFlagDraining : 0;
  WriteReplyFrame(conn, header, Status::OK(), flags, [&](WireWriter* w) {
    protocol::EncodeHealthReply(reply, w);
  });
  RecordReply(header.type, arrival, Status::OK());
}

void Coordinator::HandleStats(ClientConn* conn, const MessageHeader& header) {
  // Count this reply before snapshotting so the snapshot includes the stats
  // request itself, matching mdsd's accounting.
  RecordReply(header.type, std::chrono::steady_clock::now(), Status::OK());
  const protocol::ServerStatsSnapshot snapshot = Stats();
  WriteReplyFrame(conn, header, Status::OK(), 0, [&](WireWriter* w) {
    protocol::EncodeServerStats(snapshot, w);
  });
}

void Coordinator::HandleReload(ClientConn* conn, const MessageHeader& header,
                               const protocol::ReloadRequest& request,
                               uint32_t deadline_ms) {
  const auto arrival = std::chrono::steady_clock::now();
  if (draining()) {
    counters_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
    const Status shed = Status::Unavailable("coordinator is draining");
    WriteReplyFrame(conn, header, shed, protocol::kFlagDraining, nullptr);
    RecordReply(header.type, arrival, shed);
    return;
  }
  // One fleet reload at a time: concurrent broadcasts would interleave
  // their swaps across replicas.
  std::lock_guard<std::mutex> lock(reload_mu_);

  QueryOptions options;
  options.deadline_ms = deadline_ms;  // 0 = the client's long default bound

  // Broadcast to every replica of every shard over fresh connections
  // (reloads are rare, and a dataset build would hold a pooled connection
  // for its whole duration). All replicas must succeed: the same refusal
  // taxonomy as the Start() probe, so a half-swapped fleet never serves.
  protocol::ReloadReply merged;
  merged.old_epoch = UINT64_MAX;
  merged.new_epoch = UINT64_MAX;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = shards_[s].get();
    uint64_t shard_rows = 0;
    for (size_t i = 0; i < shard->replicas.size(); ++i) {
      Replica* replica = shard->replicas[i].get();
      Status failed = Status::OK();
      auto client = QueryClient::Connect(
          replica->addr.host, replica->addr.port, config_.connect_timeout_ms);
      if (!client.ok()) {
        failed = client.status();
      } else {
        auto reply = client->Reload(request.path, options);
        if (!reply.ok()) {
          failed = reply.status();
        } else {
          merged.old_epoch = std::min(merged.old_epoch, reply->old_epoch);
          merged.new_epoch = std::min(merged.new_epoch, reply->new_epoch);
          shard_rows = reply->served_rows;
        }
      }
      if (!failed.ok()) {
        const Status st = AnnotateStatus(
            failed, "Coordinator: reload of shard " + std::to_string(s) +
                        " replica " + std::to_string(i) + " failed");
        WriteReplyFrame(conn, header, st, 0, nullptr);
        RecordReply(header.type, arrival, st);
        return;
      }
    }
    shard->served_rows.store(shard_rows);
    merged.served_rows += shard_rows;
  }
  served_rows_.store(merged.served_rows);

  WriteReplyFrame(conn, header, Status::OK(), 0, [&](WireWriter* w) {
    protocol::EncodeReloadReply(merged, w);
  });
  RecordReply(header.type, arrival, Status::OK());
}

void Coordinator::HandleQuery(ClientConn* conn, const MessageHeader& header,
                              const std::vector<uint8_t>& payload,
                              size_t body_offset, uint32_t deadline_ms) {
  const auto arrival = std::chrono::steady_clock::now();

  if (draining()) {
    counters_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
    const Status shed = Status::Unavailable("coordinator is draining");
    WriteReplyFrame(conn, header, shed, protocol::kFlagDraining, nullptr);
    RecordReply(header.type, arrival, shed);
    return;
  }
  const size_t in_flight = in_flight_.fetch_add(1) + 1;
  uint64_t peak = counters_.in_flight_peak.load(std::memory_order_relaxed);
  while (in_flight > peak &&
         !counters_.in_flight_peak.compare_exchange_weak(peak, in_flight)) {
  }
  if (in_flight > config_.max_in_flight) {
    in_flight_.fetch_sub(1);
    counters_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    const Status shed = Status::Unavailable(
        "coordinator overloaded: " + std::to_string(config_.max_in_flight) +
        " requests in flight");
    WriteReplyFrame(conn, header, shed, 0, nullptr);
    RecordReply(header.type, arrival, shed);
    return;
  }

  SubRequest req;
  req.arrival = arrival;
  Status st = DecodeSubRequest(header, payload.data() + body_offset,
                               payload.size() - body_offset, deadline_ms, &req);
  protocol::QueryReply merged;
  std::vector<protocol::WireNeighbor> neighbors;
  ScatterOutcome outcome;
  if (st.ok()) {
    st = ScatterGather(req, &merged, &neighbors, &outcome);
  }
  in_flight_.fetch_sub(1);

  if (!st.ok()) {
    WriteReplyFrame(conn, header, st, 0, nullptr);
    RecordReply(header.type, arrival, st);
    return;
  }
  // A partial merge is a degraded answer: both flags, so old clients that
  // only know kFlagDegraded still see "incomplete", and new clients can
  // tell "shards missing" from "pages skipped".
  const uint32_t partial_flags =
      outcome.partial ? (protocol::kFlagPartial | protocol::kFlagDegraded) : 0;
  if (header.type == MessageType::kKnn) {
    protocol::KnnReply reply;
    reply.neighbors = std::move(neighbors);
    reply.shards_answered = outcome.answered;
    reply.shards_total = outcome.total;
    reply.shards_mask = outcome.mask;
    WriteReplyFrame(conn, header, st, partial_flags, [&](WireWriter* w) {
      protocol::EncodeKnnReply(reply, w);
    });
  } else {
    merged.shards_answered = outcome.answered;
    merged.shards_total = outcome.total;
    merged.shards_mask = outcome.mask;
    merged.degraded = merged.degraded || outcome.partial;
    const uint32_t flags =
        (merged.degraded ? protocol::kFlagDegraded : 0) | partial_flags;
    WriteReplyFrame(conn, header, st, flags, [&](WireWriter* w) {
      protocol::EncodeQueryReply(merged, w);
    });
  }
  RecordReply(header.type, arrival, st);
}

Status Coordinator::DecodeSubRequest(const MessageHeader& header,
                                     const uint8_t* body, size_t body_len,
                                     uint32_t deadline_ms, SubRequest* out) {
  out->type = header.type;
  out->budget_ms = deadline_ms;
  out->allow_partial = (header.flags & protocol::kFlagAllowPartial) != 0;
  // The per-leg deadline is recomputed from the remaining budget before
  // every backend exchange (LegDeadline); this is only the first leg's
  // upper bound.
  out->options.deadline_ms =
      deadline_ms != 0 ? deadline_ms : config_.sub_deadline_ms;
  out->options.skip_corrupt = (header.flags & protocol::kFlagSkipCorrupt) != 0;
  out->options.force_full_scan =
      (header.flags & protocol::kFlagHintFullScan) != 0;
  out->options.force_index = (header.flags & protocol::kFlagHintIndex) != 0;

  WireReader r(body, body_len);
  switch (header.type) {
    case MessageType::kPointCount:
    case MessageType::kBoxQuery: {
      protocol::BoxQueryRequest query;
      MDS_RETURN_NOT_OK(protocol::DecodeBoxQueryRequest(&r, &query));
      MDS_RETURN_NOT_OK(r.ExpectEnd());
      if (query.lo.size() != dim_) {
        return Status::InvalidArgument(
            "query dimension " + std::to_string(query.lo.size()) +
            " != served dimension " + std::to_string(dim_));
      }
      out->lo = std::move(query.lo);
      out->hi = std::move(query.hi);
      out->limit = query.limit;
      return Status::OK();
    }
    case MessageType::kKnn: {
      protocol::KnnRequest knn;
      MDS_RETURN_NOT_OK(protocol::DecodeKnnRequest(&r, &knn));
      MDS_RETURN_NOT_OK(r.ExpectEnd());
      if (knn.point.size() != dim_) {
        return Status::InvalidArgument(
            "query dimension " + std::to_string(knn.point.size()) +
            " != served dimension " + std::to_string(dim_));
      }
      // The global bound check lives here: each shard only knows its own
      // rows, so a k between one shard's rows and the total is valid
      // globally while invalid locally (the scatter clamps per-shard k).
      if (knn.k > served_rows_.load()) {
        return Status::InvalidArgument("k " + std::to_string(knn.k) +
                                       " exceeds served rows " +
                                       std::to_string(served_rows_.load()));
      }
      out->point = std::move(knn.point);
      out->k = knn.k;
      return Status::OK();
    }
    case MessageType::kTableSample: {
      protocol::TableSampleRequest sample;
      MDS_RETURN_NOT_OK(protocol::DecodeTableSampleRequest(&r, &sample));
      MDS_RETURN_NOT_OK(r.ExpectEnd());
      if (sample.lo.size() != dim_) {
        return Status::InvalidArgument(
            "query dimension " + std::to_string(sample.lo.size()) +
            " != served dimension " + std::to_string(dim_));
      }
      out->lo = std::move(sample.lo);
      out->hi = std::move(sample.hi);
      out->percent = sample.percent;
      out->n = sample.n;
      out->sample_seed = sample.seed;
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("not a query type");
  }
}

Status Coordinator::ScatterGather(
    const SubRequest& req, protocol::QueryReply* merged,
    std::vector<protocol::WireNeighbor>* neighbors, ScatterOutcome* outcome) {
  // Attempt jobs (and hedges) can outlive this frame when a late attempt
  // loses the race, so the request template they read is shared, not
  // stack-owned.
  auto shared_req = std::make_shared<const SubRequest>(req);
  auto scatter = std::make_shared<Scatter>();
  scatter->calls.resize(shards_.size());

  // Per-shard kNN clamp: a shard cannot answer a k beyond its own rows.
  std::vector<uint32_t> shard_k(shards_.size(), req.k);
  if (req.type == MessageType::kKnn) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      shard_k[s] = static_cast<uint32_t>(
          std::min<uint64_t>(req.k, shards_[s]->served_rows));
    }
  }

  const auto now = std::chrono::steady_clock::now();
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardCall& call = scatter->calls[s];
    call.outstanding = 1;
    std::chrono::microseconds delay{0};
    call.hedge_possible = HedgeDelay(*shards_[s], &delay);
    if (call.hedge_possible) call.hedge_at = now + delay;
    fanout_->Submit([this, s, shared_req, k = shard_k[s], scatter] {
      RunAttempt(s, /*replica_offset=*/0, shared_req, k, scatter, s,
                 /*is_hedge=*/false);
    });
  }

  // Gather, firing hedges as their delays expire. Attempts are bounded by
  // the sub-request deadline (plus the client's exchange slack), so every
  // call completes in bounded time.
  std::vector<protocol::QueryReply> query_replies;
  std::vector<std::vector<protocol::WireNeighbor>> knn_replies;
  Status failure = Status::OK();
  bool all_failures_exhaustion = true;
  {
    std::unique_lock<std::mutex> lock(scatter->mu);
    while (scatter->done_count < scatter->calls.size()) {
      // Earliest pending hedge deadline among live calls, if any.
      bool have_hedge = false;
      std::chrono::steady_clock::time_point next{};
      for (const ShardCall& call : scatter->calls) {
        if (call.done || call.hedged || !call.hedge_possible) continue;
        if (!have_hedge || call.hedge_at < next) {
          next = call.hedge_at;
          have_hedge = true;
        }
      }
      if (!have_hedge) {
        scatter->cv.wait(lock);
        continue;
      }
      if (scatter->cv.wait_until(lock, next) == std::cv_status::timeout) {
        const auto fire_now = std::chrono::steady_clock::now();
        for (size_t s = 0; s < scatter->calls.size(); ++s) {
          ShardCall& call = scatter->calls[s];
          if (call.done || call.hedged || !call.hedge_possible) continue;
          if (call.hedge_at > fire_now) continue;
          // A hedge is an extra leg like any failover: it needs deadline
          // budget left to be useful and a retry token to be affordable.
          uint32_t leg_deadline = 0;
          if (!LegDeadline(req, &leg_deadline)) {
            call.hedge_possible = false;
            continue;
          }
          if (!SpendRetryToken(shards_[s].get())) {
            shards_[s]->retries_denied.fetch_add(1, std::memory_order_relaxed);
            call.hedge_possible = false;
            continue;
          }
          call.hedged = true;
          ++call.outstanding;
          shards_[s]->hedges_fired.fetch_add(1, std::memory_order_relaxed);
          fanout_->Submit([this, s, shared_req, k = shard_k[s], scatter] {
            RunAttempt(s, /*replica_offset=*/1, shared_req, k, scatter, s,
                       /*is_hedge=*/true);
          });
        }
      }
    }

    // Extract under the lock: a losing late attempt may still touch its
    // call's bookkeeping fields.
    outcome->total = static_cast<uint32_t>(scatter->calls.size());
    for (size_t s = 0; s < scatter->calls.size(); ++s) {
      ShardCall& call = scatter->calls[s];
      if (!call.status.ok()) {
        // A failed shard fails the request unless the client opted into a
        // partial answer (below) — half a scatter is not a correct answer
        // to any query type. Prefer a retryable failure so clients treat
        // it like a single server's shed.
        if (failure.ok() || RetryableBackendFailure(call.status)) {
          failure = AnnotateStatus(call.status,
                                   "shard " + std::to_string(s) + " failed");
        }
        if (!ExhaustionFailure(call.status)) all_failures_exhaustion = false;
        continue;
      }
      ++outcome->answered;
      if (s < 64) outcome->mask |= 1ull << s;
      if (req.type == MessageType::kKnn) {
        knn_replies.push_back(std::move(call.reply.neighbors));
      } else {
        query_replies.push_back(std::move(call.reply.query));
      }
    }
  }
  if (!failure.ok()) {
    // Degraded mode: every missing shard failed by exhaustion (budget
    // spent, breaker open, deadline out — never a semantic error, which
    // all replicas would repeat) and at least one shard answered. Merge
    // the survivors and flag the reply; the counts stay honest over
    // shards_mask.
    if (!req.allow_partial || !all_failures_exhaustion ||
        outcome->answered == 0) {
      return failure;
    }
    outcome->partial = true;
    counters_.partial_replies.fetch_add(1, std::memory_order_relaxed);
  }

  if (req.type == MessageType::kKnn) {
    *neighbors = MergeKnnNeighbors(knn_replies, req.k);
    return Status::OK();
  }
  const uint64_t limit =
      req.type == MessageType::kTableSample ? req.n : req.limit;
  *merged = MergeQueryReplies(std::move(query_replies), limit);
  if (req.type == MessageType::kTableSample) {
    // A single server's sample reply has row_count == returned rows (the
    // TOP(n) cuts sampling short); keep that invariant for the merge.
    merged->row_count = merged->objids.size();
  }
  return Status::OK();
}

void Coordinator::RunAttempt(size_t shard_index, size_t replica_offset,
                             std::shared_ptr<const SubRequest> req,
                             uint32_t k_for_shard,
                             std::shared_ptr<Scatter> scatter,
                             size_t call_index, bool is_hedge) {
  Shard* shard = shards_[shard_index].get();
  if (!is_hedge) {
    shard->requests.fetch_add(1, std::memory_order_relaxed);
    AccrueRetryBudget(shard);
  }

  // Walk the replicas in preference order from replica_offset, admitting
  // each through its circuit breaker. Pass 0 honors the breakers; if it
  // admits nothing (every breaker open, probes taken), pass 1 tries them
  // all anyway — a likely-failing attempt beats a certain failure, and
  // one success closes the breaker.
  const size_t n = shard->replicas.size();
  Status last = Status::Unavailable("no replica attempted");
  SubReply reply;
  bool success = false;
  bool attempted = false;
  bool admitted_any = false;
  bool stop = false;
  for (int pass = 0; pass < 2 && !stop; ++pass) {
    if (pass == 1 && admitted_any) break;
    for (size_t i = 0; i < n && !stop; ++i) {
      Replica* replica = shard->replicas[(replica_offset + i) % n].get();
      bool is_probe = false;
      if (pass == 0) {
        const Admit admit = AdmitReplica(replica);
        if (admit == Admit::kSkip) {
          shard->breaker_short_circuits.fetch_add(1,
                                                  std::memory_order_relaxed);
          continue;
        }
        is_probe = admit == Admit::kProbe;
        admitted_any = true;
      }
      {
        // The other attempt may have completed the call while we were
        // failing over; stop burning backends on an answered question.
        std::lock_guard<std::mutex> lock(scatter->mu);
        if (scatter->calls[call_index].done) {
          if (is_probe) EndProbe(replica);
          stop = true;
          break;
        }
      }
      // The leg gets min(remaining budget, sub_deadline_ms): a request
      // that arrived with 100 ms can never spend 500 ms in retries here.
      QueryOptions leg_options = req->options;
      leg_options.exchange_slack_ms = config_.leg_slack_ms;
      if (!LegDeadline(*req, &leg_options.deadline_ms)) {
        last = Status::DeadlineExceeded(
            "deadline budget exhausted before another backend leg");
        if (is_probe) EndProbe(replica);
        stop = true;
        break;
      }
      // A failover leg (any attempt after the first) costs one retry
      // token; a hedge leg paid its token when the hedge fired.
      if (attempted) {
        if (!SpendRetryToken(shard)) {
          shard->retries_denied.fetch_add(1, std::memory_order_relaxed);
          last = Status::Unavailable("shard retry budget exhausted");
          if (is_probe) EndProbe(replica);
          stop = true;
          break;
        }
        shard->failovers.fetch_add(1, std::memory_order_relaxed);
      }
      attempted = true;

      bool aborted = false;
      last = AttemptReplica(shard, replica, *req, leg_options, k_for_shard,
                            &reply, scatter.get(), call_index, &aborted);
      if (is_probe) EndProbe(replica);
      if (aborted) {
        // The other attempt won mid-exchange: the abort is what failed
        // this leg, so its outcome says nothing about the replica.
        stop = true;
        break;
      }
      if (last.ok()) {
        MarkReplicaSuccess(replica);
        success = true;
        stop = true;
        break;
      }
      shard->backend_errors.fetch_add(1, std::memory_order_relaxed);
      if (last.code() == StatusCode::kDeadlineExceeded) {
        counters_.deadline_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      if (!ExhaustionFailure(last)) {
        stop = true;  // semantic error: every replica would repeat it
        break;
      }
      MarkReplicaFailure(replica);
    }
  }

  std::lock_guard<std::mutex> lock(scatter->mu);
  ShardCall& call = scatter->calls[call_index];
  --call.outstanding;
  if (call.done) return;  // the other attempt won; nothing to record
  if (success) {
    call.done = true;
    call.status = Status::OK();
    call.reply = std::move(reply);
    if (is_hedge) {
      shard->hedges_won.fetch_add(1, std::memory_order_relaxed);
    }
    // Reap the losing attempt's in-flight exchange: shut its socket down
    // so its read fails now instead of running out the leg deadline on a
    // connection that must not be pooled anyway. The loser deregisters
    // under this same mutex before destroying its client, so every
    // pointer here is live.
    for (QueryClient* inflight : call.inflight) inflight->Abort();
    ++scatter->done_count;
    scatter->cv.notify_all();
    return;
  }
  call.status = last;
  if (call.outstanding > 0) return;  // a hedge is still in flight
  // Don't wait out a pending hedge timer: this attempt already walked the
  // replicas, so a hedge could only repeat what just failed.
  call.done = true;
  ++scatter->done_count;
  scatter->cv.notify_all();
}

Status Coordinator::AttemptReplica(Shard* shard, Replica* replica,
                                   const SubRequest& req,
                                   const QueryOptions& leg_options,
                                   uint32_t k_for_shard, SubReply* out,
                                   Scatter* scatter, size_t call_index,
                                   bool* aborted) {
  *aborted = false;
  auto client = AcquireClient(replica);
  if (!client.ok()) return client.status();
  QueryClient conn = std::move(*client);

  {
    // Register for the reap protocol: if the other attempt completes the
    // call while this exchange runs, it Abort()s this connection.
    std::lock_guard<std::mutex> lock(scatter->mu);
    ShardCall& call = scatter->calls[call_index];
    if (call.done) {
      *aborted = true;
    } else {
      call.inflight.push_back(&conn);
    }
  }
  if (*aborted) {
    // Never registered, never used: the connection is still poolable.
    ReleaseClient(replica, std::move(conn));
    return Status::Unavailable("attempt aborted: call already answered");
  }

  const auto start = std::chrono::steady_clock::now();
  Status st;
  switch (req.type) {
    case MessageType::kPointCount: {
      auto result = conn.PointCountDetailed(Box(req.lo, req.hi), leg_options);
      if (result.ok()) out->query = FromClientResult(std::move(*result));
      st = result.status();
      break;
    }
    case MessageType::kBoxQuery: {
      auto result = conn.BoxQuery(Box(req.lo, req.hi), req.limit, leg_options);
      if (result.ok()) out->query = FromClientResult(std::move(*result));
      st = result.status();
      break;
    }
    case MessageType::kKnn: {
      auto result = conn.Knn(req.point, k_for_shard, leg_options);
      if (result.ok()) out->neighbors = std::move(result->neighbors);
      st = result.status();
      break;
    }
    case MessageType::kTableSample: {
      auto result = conn.TableSample(Box(req.lo, req.hi), req.percent, req.n,
                                     req.sample_seed, leg_options);
      if (result.ok()) out->query = FromClientResult(std::move(*result));
      st = result.status();
      break;
    }
    default:
      st = Status::Internal("ScatterGather on a non-query type");
      break;
  }

  {
    // Deregister before the winner (or this frame) can invalidate `conn`.
    std::lock_guard<std::mutex> lock(scatter->mu);
    ShardCall& call = scatter->calls[call_index];
    call.inflight.erase(
        std::remove(call.inflight.begin(), call.inflight.end(), &conn),
        call.inflight.end());
    *aborted = call.done;
  }
  if (*aborted) {
    // The winner may have shut this socket down mid-exchange — or right
    // after the exchange finished, which still poisons the connection.
    // Either way it is closed here, never pooled.
    return st.ok() ? Status::Unavailable("attempt aborted by winner")
                   : std::move(st);
  }

  if (st.ok()) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    shard->latency_us.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
  // A failed exchange poisoned the client (connected() == false) and
  // ReleaseClient only pools connections that are still good; a semantic
  // error from the backend (e.g. InvalidArgument) leaves the connection
  // healthy. The poisoned fd closes when `conn` goes out of scope — after
  // the deregistration above, so no Abort() can race it.
  ReleaseClient(replica, std::move(conn));
  return st;
}

bool Coordinator::LegDeadline(const SubRequest& req,
                              uint32_t* leg_deadline_ms) const {
  if (req.budget_ms == 0) {
    // No client deadline: each leg is bounded by sub_deadline_ms alone
    // (retries are bounded by the retry budget and breakers instead).
    *leg_deadline_ms = config_.sub_deadline_ms;
    return true;
  }
  const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
  const int64_t elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  const int64_t remaining = static_cast<int64_t>(req.budget_ms) - elapsed_ms;
  if (remaining < 1) return false;
  int64_t leg = remaining;
  if (config_.sub_deadline_ms != 0) {
    leg = std::min<int64_t>(leg, config_.sub_deadline_ms);
  }
  *leg_deadline_ms = static_cast<uint32_t>(leg);
  return true;
}

Coordinator::Admit Coordinator::AdmitReplica(Replica* replica) {
  const uint32_t failures =
      replica->consecutive_failures.load(std::memory_order_acquire);
  if (failures < config_.breaker_failure_threshold) return Admit::kClosed;
  const int64_t retry_at = replica->retry_at_ms.load(std::memory_order_acquire);
  if (SteadyNowMs() < retry_at) return Admit::kSkip;  // open
  // Half-open: admit exactly one probe until its outcome lands. The CAS
  // loser skips — a second concurrent attempt must not pile onto a
  // replica that is still proving itself.
  bool expected = false;
  if (replica->probing.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
    return Admit::kProbe;
  }
  return Admit::kSkip;
}

void Coordinator::AccrueRetryBudget(Shard* shard) {
  const int64_t cap = static_cast<int64_t>(config_.retry_budget_cap) * 1000;
  const int64_t add =
      static_cast<int64_t>(config_.retry_budget_ratio * 1000.0);
  if (add <= 0) return;
  int64_t cur = shard->retry_budget_milli.load(std::memory_order_relaxed);
  while (cur < cap && !shard->retry_budget_milli.compare_exchange_weak(
                          cur, std::min<int64_t>(cap, cur + add),
                          std::memory_order_relaxed)) {
  }
}

bool Coordinator::SpendRetryToken(Shard* shard) {
  int64_t cur = shard->retry_budget_milli.load(std::memory_order_relaxed);
  while (cur >= 1000) {
    if (shard->retry_budget_milli.compare_exchange_weak(
            cur, cur - 1000, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

Result<QueryClient> Coordinator::AcquireClient(Replica* replica) {
  {
    std::lock_guard<std::mutex> lock(replica->mu);
    if (!replica->idle.empty()) {
      QueryClient client = std::move(replica->idle.back());
      replica->idle.pop_back();
      return client;
    }
  }
  return QueryClient::Connect(replica->addr.host, replica->addr.port,
                              config_.connect_timeout_ms);
}

void Coordinator::ReleaseClient(Replica* replica, QueryClient client) {
  if (!client.connected()) return;
  std::lock_guard<std::mutex> lock(replica->mu);
  if (replica->idle.size() < config_.pool_connections_per_replica) {
    replica->idle.push_back(std::move(client));
  }
}

bool Coordinator::ReplicaHealthy(const Replica& replica) const {
  // Healthy = breaker not open: closed (under the failure threshold) or
  // half-open (backoff expired, a probe may run).
  const uint32_t failures =
      replica.consecutive_failures.load(std::memory_order_acquire);
  if (failures < config_.breaker_failure_threshold) return true;
  return SteadyNowMs() >= replica.retry_at_ms.load(std::memory_order_acquire);
}

void Coordinator::MarkReplicaFailure(Replica* replica) {
  const uint32_t failures =
      replica->consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t base = config_.replica_backoff_ms;
  for (uint32_t i = 1; i < failures && base < config_.replica_backoff_max_ms;
       ++i) {
    base *= 2;
  }
  base = std::min<uint64_t>(base, config_.replica_backoff_max_ms);
  // Equal jitter (base/2 + uniform(0, base/2]): keeps at least half the
  // exponential spacing while desynchronizing the probe times of clients
  // that all watched the same shard restart — a deterministic backoff
  // turns recovery into a synchronized retry storm.
  uint64_t backoff = base;
  if (base >= 2) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    backoff = base / 2 + rng_.NextBounded(base / 2 + 1);
  }
  replica->retry_at_ms.store(SteadyNowMs() + static_cast<int64_t>(backoff),
                             std::memory_order_release);
}

void Coordinator::MarkReplicaSuccess(Replica* replica) {
  replica->consecutive_failures.store(0, std::memory_order_release);
  replica->retry_at_ms.store(0, std::memory_order_release);
}

bool Coordinator::HedgeDelay(const Shard& shard,
                             std::chrono::microseconds* delay) const {
  if (shard.replicas.size() < 2) return false;
  if (config_.hedge_delay_ms != 0) {
    *delay = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::milliseconds(config_.hedge_delay_ms));
    return true;
  }
  const Histogram::Snapshot snap = shard.latency_us.TakeSnapshot();
  if (snap.count < config_.hedge_min_samples) return false;
  // Never hedge instantly even when the shard is very fast: below ~1ms
  // the hedge would routinely lose the race it was meant to win.
  *delay = std::chrono::microseconds(
      std::max<uint64_t>(1000, snap.ValueAtPercentile(99)));
  return true;
}

void Coordinator::WriteReplyFrame(
    ClientConn* conn, const MessageHeader& req, const Status& status,
    uint32_t extra_flags, const std::function<void(WireWriter*)>& encode_body) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  MessageHeader header;
  header.type = req.type;
  header.flags = protocol::kFlagReply | extra_flags;
  header.request_id = req.request_id;
  protocol::EncodeMessageHeader(header, &w);
  protocol::EncodeStatus(status, &w);
  if (status.ok() && encode_body) encode_body(&w);
  // Writes on one connection come only from its own handler thread, so
  // replies never interleave. A failed write surfaces on the next read.
  uint64_t wire_bytes = 0;
  (void)protocol::WriteFrame(&conn->sock, IoDeadline::After(30000), payload,
                             &wire_bytes);
  counters_.bytes_out.fetch_add(wire_bytes, std::memory_order_relaxed);
}

void Coordinator::RecordReply(MessageType type,
                              std::chrono::steady_clock::time_point arrival,
                              const Status& status) {
  const size_t idx = protocol::TypeIndex(type);
  if (idx >= protocol::kNumRequestTypes) return;
  const auto elapsed = std::chrono::steady_clock::now() - arrival;
  latency_us_[idx].Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
  if (status.ok()) {
    counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.replies_error.fetch_add(1, std::memory_order_relaxed);
    counters_.type_errors[idx].fetch_add(1, std::memory_order_relaxed);
  }
}

protocol::ServerStatsSnapshot Coordinator::Stats() const {
  protocol::ServerStatsSnapshot out;
  out.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  out.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  out.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  out.requests_total = counters_.requests_total.load(std::memory_order_relaxed);
  out.replies_ok = counters_.replies_ok.load(std::memory_order_relaxed);
  out.replies_error = counters_.replies_error.load(std::memory_order_relaxed);
  out.rejected_overload =
      counters_.rejected_overload.load(std::memory_order_relaxed);
  out.rejected_draining =
      counters_.rejected_draining.load(std::memory_order_relaxed);
  out.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  out.in_flight_peak = counters_.in_flight_peak.load(std::memory_order_relaxed);
  out.deadline_timeouts =
      counters_.deadline_timeouts.load(std::memory_order_relaxed);
  out.partial_replies =
      counters_.partial_replies.load(std::memory_order_relaxed);
  for (size_t i = 0; i < protocol::kNumRequestTypes; ++i) {
    const Histogram::Snapshot snap = latency_us_[i].TakeSnapshot();
    protocol::RequestTypeStats& t = out.per_type[i];
    t.count = snap.count;
    t.errors = counters_.type_errors[i].load(std::memory_order_relaxed);
    t.p50_us = snap.ValueAtPercentile(50);
    t.p95_us = snap.ValueAtPercentile(95);
    t.p99_us = snap.ValueAtPercentile(99);
    t.max_us = snap.ValueAtPercentile(100);
    t.mean_us = snap.Mean();
  }
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    protocol::ShardStatsEntry entry;
    entry.replicas = static_cast<uint32_t>(shard->replicas.size());
    for (const auto& replica : shard->replicas) {
      if (ReplicaHealthy(*replica)) ++entry.healthy_replicas;
    }
    for (const auto& replica : shard->replicas) {
      const uint32_t failures =
          replica->consecutive_failures.load(std::memory_order_acquire);
      if (failures < config_.breaker_failure_threshold) continue;
      if (SteadyNowMs() <
          replica->retry_at_ms.load(std::memory_order_acquire)) {
        ++entry.open_breakers;
      } else {
        ++entry.half_open_breakers;
      }
    }
    entry.requests = shard->requests.load(std::memory_order_relaxed);
    entry.backend_errors = shard->backend_errors.load(std::memory_order_relaxed);
    entry.failovers = shard->failovers.load(std::memory_order_relaxed);
    entry.hedges_fired = shard->hedges_fired.load(std::memory_order_relaxed);
    entry.hedges_won = shard->hedges_won.load(std::memory_order_relaxed);
    entry.retries_denied = shard->retries_denied.load(std::memory_order_relaxed);
    entry.breaker_short_circuits =
        shard->breaker_short_circuits.load(std::memory_order_relaxed);
    const Histogram::Snapshot snap = shard->latency_us.TakeSnapshot();
    entry.p50_us = snap.ValueAtPercentile(50);
    entry.p99_us = snap.ValueAtPercentile(99);
    out.shards.push_back(entry);
  }
  return out;
}

}  // namespace mds
