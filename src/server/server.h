#ifndef MDS_SERVER_SERVER_H_
#define MDS_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/buffered_socket.h"
#include "common/event_loop.h"
#include "common/histogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/socket.h"
#include "server/dataset.h"
#include "server/protocol.h"
#include "server/response_cache.h"

namespace mds {

/// mdsd server tuning knobs.
struct ServerConfig {
  /// Loopback TCP port; 0 picks an ephemeral port (see QueryServer::port).
  uint16_t port = 0;
  /// Query worker threads; 0 = QueryThreads() (MDS_QUERY_THREADS).
  unsigned num_workers = 0;
  /// Admission-control cap: maximum requests admitted (queued + executing)
  /// at once. Arrivals beyond the cap are rejected immediately with a
  /// retryable kUnavailable reply — the server sheds load, it never
  /// buffers unboundedly or hangs.
  size_t max_in_flight = 64;
  /// Connections beyond this are accepted and closed immediately.
  size_t max_connections = 256;
  /// Applied to requests that carry no deadline; 0 = none.
  uint32_t default_deadline_ms = 0;
  /// Per-frame read deadline on every connection: a client that stalls
  /// mid-frame (slow-loris) or goes silent longer than this is closed.
  /// 0 = no timeout.
  uint32_t idle_timeout_ms = 30000;
  /// Response-cache capacity in bytes; 0 disables caching (the library
  /// default, so embedded tests see every request execute). The mdsd
  /// binary enables it by default (--cache-bytes / --no-cache).
  size_t cache_bytes = 0;
  /// Reactor I/O threads (event loops); connections are spread round-robin
  /// across them. 0 = 1. One loop comfortably serves thousands of
  /// connections; more loops only help when frame parsing itself saturates
  /// a core.
  unsigned io_threads = 1;
  /// Upper bound on contiguous pipelined cache-miss query requests from
  /// one connection ganged into a single QueryEngine::ExecuteBatch call.
  /// 1 disables ganging (every request executes alone).
  size_t pipeline_batch_max = 64;
  /// Test hook: treat the first N accepted connections as if accept()
  /// had failed with EMFILE (close them, count accept_errors, back off).
  /// Exercises the fd-exhaustion path deterministically.
  size_t debug_fail_first_accepts = 0;
};

/// The mdsd query server: a concurrent TCP front end over the QueryEngine.
///
/// Threading model (DESIGN.md "Serving layer"):
///  - `io_threads` reactor threads (default one), each running an epoll
///    EventLoop; loop 0 owns the non-blocking listener, and every
///    connection lives on exactly one loop (BufferedSocket, idle timer,
///    write queue). Thread count is independent of connection count —
///    thousands of idle connections cost table entries, not stacks.
///  - the I/O thread decodes frames in place; health/stats and response-
///    cache hits are answered inline (they must work while the server is
///    saturated), query requests pass admission control into a bounded
///    queue — contiguous pipelined cache-miss box-like requests from one
///    readiness event are ganged into one batch;
///  - the existing TaskPool (MDS_QUERY_THREADS workers) drains the queue,
///    executes each batch through QueryPlanner/AccessPath (gangs through
///    one QueryEngine::ExecuteBatch call) over the shared BufferPool, and
///    enqueues the reply back onto the connection's loop, which flushes
///    it with writev (no worker ever blocks on a slow client).
///
/// Admission control: at most max_in_flight requests are in the system;
/// beyond that, arrivals get an immediate retryable kUnavailable. Each
/// request may carry a deadline — a request whose deadline expires while
/// queued is answered kUnavailable without executing.
///
/// Graceful drain: RequestDrain() stops accepting connections and rejects
/// new query requests (kUnavailable + kFlagDraining) while every admitted
/// request still executes and replies. Shutdown() drains, waits for
/// in-flight work, flushes pending replies, then joins all threads.
/// SIGTERM handling is the binary's job (see mdsd_main.cc): it calls
/// Shutdown().
///
/// Thread safety: Start/RequestDrain/Shutdown may be called from any
/// thread; Start exactly once per started epoch. Stats() is safe at any
/// time.
class QueryServer {
 public:
  /// Serves `dataset` as the initial generation. The server holds the
  /// dataset as an RCU-style snapshot: every request captures the current
  /// shared_ptr at parse time and executes against it even if a Reload
  /// swaps the served generation mid-flight.
  QueryServer(std::shared_ptr<const ServedDataset> dataset,
              const ServerConfig& config);
  /// Legacy non-owning form: `dataset` must outlive the server and every
  /// in-flight request. Reload works only if a handler is set.
  QueryServer(const ServedDataset* dataset, const ServerConfig& config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds the port and starts the I/O and worker threads.
  Status Start();

  /// Bound port (valid after Start; the ephemeral port when config.port=0).
  uint16_t port() const { return port_; }

  bool draining() const { return state_.load() != State::kRunning; }

  /// Stops admitting new work; in-flight requests keep executing. Safe to
  /// call more than once.
  void RequestDrain();

  /// Full graceful stop: drain, complete in-flight requests, flush their
  /// replies, join all threads, close all connections. Idempotent.
  void Shutdown();

  /// Point-in-time server counters (the same snapshot a kStats request
  /// returns).
  protocol::ServerStatsSnapshot Stats() const;

  /// Produces the next dataset generation for a hot swap. `path` names a
  /// dataset file on this machine; empty means "reload the current
  /// source" (same file, or a rebuild of the same synthetic config — a
  /// no-op reload whose replies are byte-identical). The handler runs on
  /// a worker thread and may take seconds; it must not touch the server.
  using ReloadHandler =
      std::function<Result<std::shared_ptr<ServedDataset>>(
          const std::string& path)>;
  void SetReloadHandler(ReloadHandler handler);

  /// Hot-swaps the served dataset (kReload requests and SIGHUP both land
  /// here): runs the reload handler, validates the new generation against
  /// the live one (dimension and shard slice must match — the same
  /// refusal taxonomy as the mdsc startup probe), then publishes it:
  /// swap the snapshot pointer first, bump the (adopted) epoch second.
  /// That order means a request racing the swap can at worst populate the
  /// response cache with a still-correct old-generation reply under the
  /// old epoch key, where the bump strands it; the reverse order could
  /// cache an old reply under the new epoch, a persistent lie. In-flight
  /// requests finish on their captured snapshot; the old generation is
  /// freed when its last request completes. Reloads are serialized;
  /// queries are never blocked by the (slow) load, only by the brief
  /// pointer swap. Fails with FailedPrecondition when no handler is set
  /// or the new dataset is incompatible — the live dataset is untouched
  /// on every failure path.
  Result<protocol::ReloadReply> Reload(const std::string& path);

 private:
  enum class State { kRunning, kDraining, kStopped };

  struct IoLoop;

  /// Per-connection reactor state. All fields are owned by the home
  /// loop's thread; other threads reach a Conn only via EventLoop::Post.
  struct Conn {
    BufferedSocket bsock;
    IoLoop* home = nullptr;
    int fd = -1;  ///< cached for deregistration after the socket closes
    bool closed = false;
    /// Logical close: no more frames are read (peer EOF, idle timeout or
    /// protocol violation), but the socket stays open until the replies
    /// of already-admitted requests have flushed — the old blocking
    /// reader's exit semantics, reproduced on the loop.
    bool read_eof = false;
    bool want_write = false;  ///< EPOLLOUT currently requested
    /// Admitted requests whose replies have not yet been delivered to
    /// this connection's write queue (loop thread only).
    size_t admitted_open = 0;
    EventLoop::TimerId idle_timer = 0;
    EventLoop::TimerId write_timer = 0;
  };

  /// One reactor thread: an event loop plus the connections homed on it.
  struct IoLoop {
    EventLoop loop;
    std::thread thread;
    std::vector<std::shared_ptr<Conn>> conns;  // loop-thread owned
    bool shutting_down = false;
    bool stop_requested = false;
    EventLoop::TimerId shutdown_timer = 0;
  };

  struct PendingRequest {
    std::shared_ptr<Conn> conn;
    /// Dataset generation captured at parse time (with its epoch, under
    /// one lock, so the pair is consistent across a concurrent swap). The
    /// request executes against this snapshot even if a reload publishes
    /// a newer generation first; the shared_ptr keeps the old generation
    /// alive until its last in-flight request replies.
    std::shared_ptr<const ServedDataset> dataset;
    protocol::MessageHeader header;
    std::vector<uint8_t> payload;  // full payload; body starts at body_offset
    size_t body_offset = 0;
    uint32_t deadline_ms = 0;  // effective (request or config default)
    std::chrono::steady_clock::time_point arrival;
    // Set by the I/O-thread cache probe on a miss: this request should
    // populate the cache under the epoch observed at probe time (an epoch
    // bump between probe and populate strands the entry under the old
    // epoch, where it can never serve a stale hit).
    bool cache_populate = false;
    uint64_t cache_epoch = 0;
    /// True once the request passed admission control (its reply delivery
    /// decrements Conn::admitted_open).
    bool admitted = false;
  };

  /// One work-queue item: a gang of admitted requests from one connection
  /// (usually a singleton; >1 for contiguous pipelined cache misses).
  using Batch = std::vector<PendingRequest>;

  /// One encoded reply, split for scatter-gather delivery: `head` is the
  /// frame prefix plus the 28 bytes through the message header (per-request:
  /// it carries the requester's id), `tail` is the refcounted payload after
  /// the header (status + body), shared by reference with the response
  /// cache on hits. Queued as two write buffers, gathered into one writev.
  struct ReplyFrame {
    std::vector<uint8_t> head;
    SlabPool::Slice tail;
    size_t size() const { return head.size() + tail.size(); }
  };

  // --- reactor path (loop threads) ---------------------------------------
  void OnAcceptReady();
  void BackOffAccept();
  void AdoptConnection(Socket sock);
  void RegisterConnection(IoLoop* home, std::shared_ptr<Conn> conn);
  void OnConnEvent(const std::shared_ptr<Conn>& conn, uint32_t ready);
  /// Parses complete frames out of the connection's read buffer,
  /// dispatching each; gangs admitted query requests. Returns false when
  /// reading stopped (protocol violation).
  bool ProcessFrames(const std::shared_ptr<Conn>& conn, Batch* gang);
  /// Dispatches one decoded frame payload. Returns false when the
  /// connection must stop reading (header violation).
  bool HandleFrame(const std::shared_ptr<Conn>& conn,
                   std::vector<uint8_t> payload, Batch* gang);
  void FlushGang(Batch* gang);
  void EnqueueBatch(Batch batch);
  void ArmIdleTimer(const std::shared_ptr<Conn>& conn);
  /// Flushes the connection's write queue, managing EPOLLOUT interest and
  /// the write-stall timer; closes on error.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  /// Logical close (see Conn::read_eof): closes outright once no admitted
  /// replies or queued writes remain.
  void StopReading(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  /// Loop-thread delivery of an encoded reply frame: queues head then tail
  /// back to back (one writev gathers both; no payload copy).
  void DeliverReply(const std::shared_ptr<Conn>& conn, ReplyFrame frame,
                    bool admitted);
  /// Routes an encoded reply frame to the connection's loop (direct when
  /// already on it, Post otherwise).
  void EnqueueReply(const std::shared_ptr<Conn>& conn, ReplyFrame frame,
                    bool admitted);
  void ShutdownLoopTask(IoLoop* io);
  void CheckLoopDrained(IoLoop* io);

  // --- request path (worker threads unless noted) ------------------------
  void WorkerLoop();
  /// Executes one admitted query request and enqueues its reply.
  void HandleRequest(PendingRequest* req);
  /// The box-like branch of HandleRequest (planner execution + reply).
  void ExecuteAndReplyBoxLike(PendingRequest* req);
  /// Executes a gang through one QueryEngine::ExecuteBatch call. Any slot
  /// that cannot take the batch fast path (or fails on it) is re-run
  /// through the exact single-request path, so replies are byte-identical
  /// to sequential execution.
  void HandleBatch(Batch* batch);

  void HandleHealth(const PendingRequest& req);  // loop thread
  void HandleStats(const PendingRequest& req);   // loop thread
  /// Executes one admitted kReload request (worker thread; the load may
  /// take seconds and must never run on an I/O thread).
  void HandleReload(PendingRequest* req);
  Status ExecuteBoxLike(const PendingRequest& req, protocol::QueryReply* out);
  Status ExecuteKnn(const PendingRequest& req, protocol::KnnReply* out);

  /// I/O-thread fast path: serves `req` from the response cache when a
  /// memoized reply exists. Hits bypass admission control, the queue and
  /// the deadline machinery entirely. Returns true when the request was
  /// answered here (hit) — the caller must not enqueue it.
  bool TryServeFromCache(PendingRequest* req);

  /// Serializes a reply frame (status + optional body encoded by
  /// `encode_body` when status is OK) and enqueues it on the connection's
  /// loop. When `cacheable_reply` and the request was tagged for
  /// population, the encoded reply enters the response cache after
  /// finalization and before it is enqueued.
  template <typename EncodeBody>
  void WriteReply(const PendingRequest& req, const Status& status,
                  uint32_t extra_flags, bool cacheable_reply,
                  EncodeBody&& encode_body);
  void WriteErrorReply(const PendingRequest& req, const Status& status,
                       uint32_t extra_flags);

  void FinishRequest(const PendingRequest& req, const Status& status);
  /// Records latency + reply counters for an inline (loop-thread) reply.
  void RecordInlineReply(const PendingRequest& req);

  bool Expired(const PendingRequest& req) const;

  /// Consistent (dataset, epoch) pair under dataset_mu_.
  void SnapshotDataset(std::shared_ptr<const ServedDataset>* dataset,
                       uint64_t* epoch) const;

  /// The served generation. Guarded by dataset_mu_ together with
  /// pool_at_start_ (the I/O-delta baseline is per-generation); reads are
  /// a brief lock per request, the only writer is Reload's swap.
  mutable std::mutex dataset_mu_;
  std::shared_ptr<const ServedDataset> dataset_;
  ReloadHandler reload_handler_;  // guarded by dataset_mu_
  /// Serializes whole reloads (load + validate + swap) without ever
  /// holding dataset_mu_ across the slow load.
  std::mutex reload_mu_;
  ServerConfig config_;
  uint16_t port_ = 0;

  TcpListener listener_;
  std::vector<std::unique_ptr<IoLoop>> loops_;
  size_t next_loop_ = 0;  // loop-0 thread only (round-robin assignment)

  std::thread worker_runner_;  // blocks inside TaskPool::Run for the
                               // server's lifetime
  std::unique_ptr<TaskPool> workers_;

  std::atomic<State> state_{State::kStopped};
  bool started_ = false;

  // Accept-backoff state (loop-0 thread only; accept_rng_ jitters the
  // re-arm interval and is therefore fine unguarded).
  bool listener_registered_ = false;
  uint64_t accept_backoff_ms_ = 0;
  size_t debug_fail_remaining_ = 0;
  Rng accept_rng_{std::random_device{}()};

  // Bounded request queue + in-flight accounting (admission control).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;    // workers wait for work
  std::condition_variable drained_cv_;  // Shutdown waits for in-flight == 0
  std::deque<Batch> queue_;
  bool queue_closed_ = false;
  size_t in_flight_ = 0;  // queued + executing requests, guarded by queue_mu_

  std::atomic<size_t> open_connections_{0};

  // Counters (relaxed atomics; aggregated into ServerStatsSnapshot).
  struct Counters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> accept_errors{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> requests_total{0};
    std::atomic<uint64_t> replies_ok{0};
    std::atomic<uint64_t> replies_error{0};
    std::atomic<uint64_t> rejected_overload{0};
    std::atomic<uint64_t> rejected_draining{0};
    std::atomic<uint64_t> deadline_timeouts{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> in_flight_peak{0};
    /// Post-encode payload memcpys on the reply path: one per executed
    /// (miss) reply when its scratch encoding moves into a slab slice,
    /// zero per cache hit. The zero-copy regression gauge — a pure-hit
    /// workload must not move it.
    std::atomic<uint64_t> reply_tail_copies{0};
    std::atomic<uint64_t> type_errors[protocol::kNumRequestTypes] = {};
  };
  mutable Counters counters_;
  Histogram latency_us_[protocol::kNumRequestTypes];
  CounterSnapshot pool_at_start_;  // guarded by dataset_mu_ after Start
  // Response cache (null when config.cache_bytes == 0). Probed on I/O
  // threads, populated on workers; thread-safe by construction.
  std::unique_ptr<ResponseCache> cache_;
};

}  // namespace mds

#endif  // MDS_SERVER_SERVER_H_
