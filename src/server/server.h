#ifndef MDS_SERVER_SERVER_H_
#define MDS_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/parallel.h"
#include "common/socket.h"
#include "server/dataset.h"
#include "server/protocol.h"
#include "server/response_cache.h"

namespace mds {

/// mdsd server tuning knobs.
struct ServerConfig {
  /// Loopback TCP port; 0 picks an ephemeral port (see QueryServer::port).
  uint16_t port = 0;
  /// Query worker threads; 0 = QueryThreads() (MDS_QUERY_THREADS).
  unsigned num_workers = 0;
  /// Admission-control cap: maximum requests admitted (queued + executing)
  /// at once. Arrivals beyond the cap are rejected immediately with a
  /// retryable kUnavailable reply — the server sheds load, it never
  /// buffers unboundedly or hangs.
  size_t max_in_flight = 64;
  /// Connections beyond this are accepted and closed immediately.
  size_t max_connections = 256;
  /// Applied to requests that carry no deadline; 0 = none.
  uint32_t default_deadline_ms = 0;
  /// Per-frame read deadline on every connection: a client that stalls
  /// mid-frame (slow-loris) or goes silent longer than this is closed.
  /// 0 = no timeout.
  uint32_t idle_timeout_ms = 30000;
  /// Response-cache capacity in bytes; 0 disables caching (the library
  /// default, so embedded tests see every request execute). The mdsd
  /// binary enables it by default (--cache-bytes / --no-cache).
  size_t cache_bytes = 0;
};

/// The mdsd query server: a concurrent TCP front end over the QueryEngine.
///
/// Threading model (DESIGN.md "Serving layer"):
///  - one acceptor thread owns the listening socket;
///  - one reader thread per connection decodes frames; health/stats are
///    answered inline (they must work while the server is saturated),
///    query requests pass admission control into a bounded queue;
///  - the existing TaskPool (MDS_QUERY_THREADS workers) drains the queue,
///    executes each query through QueryPlanner/AccessPath over the shared
///    BufferPool, and writes the reply (per-connection write mutex).
///
/// Admission control: at most max_in_flight requests are in the system;
/// beyond that, arrivals get an immediate retryable kUnavailable. Each
/// request may carry a deadline — a request whose deadline expires while
/// queued is answered kUnavailable without executing.
///
/// Graceful drain: RequestDrain() stops accepting connections and rejects
/// new query requests (kUnavailable + kFlagDraining) while every admitted
/// request still executes and replies. Shutdown() drains, waits for
/// in-flight work, then joins all threads. SIGTERM handling is the
/// binary's job (see mdsd_main.cc): it calls Shutdown().
///
/// Thread safety: Start/RequestDrain/Shutdown may be called from any
/// thread; Start exactly once. Stats() is safe at any time.
class QueryServer {
 public:
  QueryServer(const ServedDataset* dataset, const ServerConfig& config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds the port and starts the acceptor and worker threads.
  Status Start();

  /// Bound port (valid after Start; the ephemeral port when config.port=0).
  uint16_t port() const { return port_; }

  bool draining() const { return state_.load() != State::kRunning; }

  /// Stops admitting new work; in-flight requests keep executing. Safe to
  /// call more than once.
  void RequestDrain();

  /// Full graceful stop: drain, complete in-flight requests, join all
  /// threads, close all connections. Idempotent.
  void Shutdown();

  /// Point-in-time server counters (the same snapshot a kStats request
  /// returns).
  protocol::ServerStatsSnapshot Stats() const;

 private:
  enum class State { kRunning, kDraining, kStopped };

  struct Connection {
    Socket sock;
    std::mutex write_mu;
    uint64_t bytes_in = 0;   // owned by the reader thread
  };

  struct PendingRequest {
    std::shared_ptr<Connection> conn;
    protocol::MessageHeader header;
    std::vector<uint8_t> payload;  // full payload; body starts at body_offset
    size_t body_offset = 0;
    uint32_t deadline_ms = 0;  // effective (request or config default)
    std::chrono::steady_clock::time_point arrival;
    // Set by the reader-thread cache probe on a miss: this request should
    // populate the cache under the epoch observed at probe time (an epoch
    // bump between probe and populate strands the entry under the old
    // epoch, where it can never serve a stale hit).
    bool cache_populate = false;
    uint64_t cache_epoch = 0;
  };

  struct ReaderThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  /// Executes one admitted query request and writes its reply.
  void HandleRequest(PendingRequest* req);

  void HandleHealth(const PendingRequest& req);
  void HandleStats(const PendingRequest& req);
  Status ExecuteBoxLike(const PendingRequest& req, protocol::QueryReply* out);
  Status ExecuteKnn(const PendingRequest& req, protocol::KnnReply* out);

  /// Reader-thread fast path: serves `req` from the response cache when a
  /// memoized reply exists. Hits bypass admission control, the queue and
  /// the deadline machinery entirely. Returns true when the request was
  /// answered here (hit) — the caller must not enqueue it.
  bool TryServeFromCache(PendingRequest* req);

  /// Serializes and writes a reply frame (status + optional body encoded
  /// by `encode_body` when status is OK). When `cacheable_reply` and the
  /// request was tagged for population, the encoded reply enters the
  /// response cache after finalization and before it hits the wire.
  /// Closes the connection on write failure. Returns the write status.
  template <typename EncodeBody>
  Status WriteReply(const PendingRequest& req, const Status& status,
                    uint32_t extra_flags, bool cacheable_reply,
                    EncodeBody&& encode_body);
  Status WriteErrorReply(const PendingRequest& req, const Status& status,
                         uint32_t extra_flags);

  void FinishRequest(const PendingRequest& req, const Status& status);
  void ReapFinishedReaders(bool join_all);

  bool Expired(const PendingRequest& req) const;

  const ServedDataset* dataset_;
  ServerConfig config_;
  uint16_t port_ = 0;

  TcpListener listener_;
  std::thread acceptor_;
  std::thread worker_runner_;  // blocks inside TaskPool::Run for the
                               // server's lifetime
  std::unique_ptr<TaskPool> workers_;

  std::atomic<State> state_{State::kStopped};
  bool started_ = false;

  // Bounded request queue + in-flight accounting (admission control).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;   // workers wait for work
  std::condition_variable drained_cv_;  // Shutdown waits for in-flight == 0
  std::deque<PendingRequest> queue_;
  bool queue_closed_ = false;
  size_t in_flight_ = 0;  // queued + executing, guarded by queue_mu_

  // Connection registry (for Shutdown) and reader thread reaping.
  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Connection>> conns_;
  std::list<ReaderThread> readers_;
  std::atomic<size_t> open_connections_{0};

  // Counters (relaxed atomics; aggregated into ServerStatsSnapshot).
  struct Counters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> requests_total{0};
    std::atomic<uint64_t> replies_ok{0};
    std::atomic<uint64_t> replies_error{0};
    std::atomic<uint64_t> rejected_overload{0};
    std::atomic<uint64_t> rejected_draining{0};
    std::atomic<uint64_t> deadline_timeouts{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> in_flight_peak{0};
    std::atomic<uint64_t> type_errors[protocol::kNumRequestTypes] = {};
  };
  mutable Counters counters_;
  Histogram latency_us_[protocol::kNumRequestTypes];
  CounterSnapshot pool_at_start_;
  // Response cache (null when config.cache_bytes == 0). Probed on reader
  // threads, populated on workers; thread-safe by construction.
  std::unique_ptr<ResponseCache> cache_;
};

}  // namespace mds

#endif  // MDS_SERVER_SERVER_H_
