#include "server/client.h"

#include <unordered_map>
#include <utility>

namespace mds {

namespace {

using protocol::MessageHeader;
using protocol::MessageType;

/// Client-side slack on top of the server-side deadline: the exchange is
/// bounded even when the request deadline is tight, and an unbounded
/// request still cannot hang the client forever.
constexpr uint32_t kIoSlackMs = 2000;
constexpr uint32_t kNoDeadlineIoMs = 120000;

IoDeadline ExchangeDeadline(const QueryOptions& options) {
  const uint32_t slack =
      options.exchange_slack_ms == 0 ? kIoSlackMs : options.exchange_slack_ms;
  return IoDeadline::After(options.deadline_ms == 0
                               ? kNoDeadlineIoMs
                               : options.deadline_ms + slack);
}

/// Lifts a decoded QueryReply (plus its header flags) into the client's
/// result struct — one place for the degraded/partial/coverage mapping.
QueryClient::QueryResult ToQueryResult(protocol::QueryReply decoded,
                                       const MessageHeader& header) {
  QueryClient::QueryResult out;
  out.row_count = decoded.row_count;
  out.objids = std::move(decoded.objids);
  out.rows_scanned = decoded.rows_scanned;
  out.pages_fetched = decoded.pages_fetched;
  out.pages_read = decoded.pages_read;
  out.pages_skipped = decoded.pages_skipped;
  out.degraded =
      decoded.degraded || (header.flags & protocol::kFlagDegraded) != 0;
  out.partial = (header.flags & protocol::kFlagPartial) != 0;
  out.shards_answered = decoded.shards_answered;
  out.shards_total = decoded.shards_total;
  out.shards_mask = decoded.shards_mask;
  out.chosen_path = std::move(decoded.chosen_path);
  return out;
}

}  // namespace

Result<QueryClient> QueryClient::Connect(const std::string& host,
                                         uint16_t port,
                                         uint64_t connect_timeout_ms) {
  auto sock = TcpConnect(host, port, connect_timeout_ms);
  if (!sock.ok()) {
    return AnnotateStatus(sock.status(), "QueryClient::Connect");
  }
  return QueryClient(std::move(*sock));
}

Status QueryClient::MapExchangeFailure(Status st, const Options& options,
                                       const IoDeadline& deadline) {
  // A request that carried a deadline and whose exchange ran out the
  // clock is a deadline miss, not generic unavailability: the caller set
  // the bound, so tell them it elapsed. (Without a caller deadline the
  // long safety bound expiring stays kUnavailable — nobody asked for it.)
  if (options.deadline_ms != 0 && st.code() == StatusCode::kUnavailable &&
      deadline.Expired()) {
    return Status::DeadlineExceeded("deadline of " +
                                    std::to_string(options.deadline_ms) +
                                    "ms elapsed awaiting reply");
  }
  // A reply frame that failed CRC or framing checks means the bytes were
  // damaged in transit, not that the backend answered kCorruption: the
  // connection is closed either way, so surface it as a retryable
  // transport fault rather than a semantic data-corruption verdict.
  if (st.code() == StatusCode::kCorruption ||
      st.code() == StatusCode::kInvalidArgument) {
    return Status::IOError("reply frame damaged in transit: " + st.message());
  }
  return st;
}

uint32_t QueryClient::RequestFlags(const Options& options) {
  uint32_t flags = 0;
  if (options.skip_corrupt) flags |= protocol::kFlagSkipCorrupt;
  if (options.force_full_scan) {
    flags |= protocol::kFlagHintFullScan;
  } else if (options.force_index) {
    flags |= protocol::kFlagHintIndex;
  }
  if (options.allow_partial) flags |= protocol::kFlagAllowPartial;
  return flags;
}

Status QueryClient::RoundTrip(MessageType type, const Options& options,
                              const std::vector<uint8_t>& body,
                              std::vector<uint8_t>* reply_payload,
                              MessageHeader* reply_header,
                              size_t* body_offset) {
  if (!connected()) {
    return Status::FailedPrecondition("client connection is closed");
  }
  const uint64_t request_id = next_request_id_++;

  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  MessageHeader header;
  header.type = type;
  header.flags = RequestFlags(options);
  header.request_id = request_id;
  EncodeMessageHeader(header, &w);
  w.PutU32(options.deadline_ms);  // RequestPrefix
  w.PutRaw(body.data(), body.size());

  const IoDeadline deadline = ExchangeDeadline(options);
  Status st = protocol::WriteFrame(&sock_, deadline, payload);
  if (st.ok()) {
    st = protocol::ReadFrame(&sock_, deadline, reply_payload);
  }
  if (!st.ok()) {
    // The stream is desynchronized (partial frame, timeout, close): this
    // connection cannot be trusted for another exchange. Poison it rather
    // than closing the fd here — the fd is only closed by the owning
    // thread (destruction, reconnect), so a cross-thread Abort() can
    // never race a close onto a recycled descriptor.
    poisoned_ = true;
    return AnnotateStatus(MapExchangeFailure(std::move(st), options, deadline),
                          "QueryClient");
  }

  WireReader r(*reply_payload);
  MDS_RETURN_NOT_OK(DecodeMessageHeader(&r, reply_header));
  if ((reply_header->flags & protocol::kFlagReply) == 0 ||
      reply_header->type != type ||
      reply_header->request_id != request_id) {
    poisoned_ = true;
    return Status::Internal("protocol: reply does not match request");
  }
  Status remote;
  MDS_RETURN_NOT_OK(protocol::DecodeStatus(&r, &remote));
  MDS_RETURN_NOT_OK(remote);
  *body_offset = reply_payload->size() - r.remaining();
  return Status::OK();
}

Result<uint64_t> QueryClient::PointCount(const Box& box,
                                         const Options& options) {
  auto result = BoxQueryInternal(box, 0, options, MessageType::kPointCount);
  if (!result.ok()) return result.status();
  return result->row_count;
}

Result<QueryClient::QueryResult> QueryClient::PointCountDetailed(
    const Box& box, const Options& options) {
  return BoxQueryInternal(box, 0, options, MessageType::kPointCount);
}

Result<QueryClient::QueryResult> QueryClient::BoxQuery(const Box& box,
                                                       uint64_t limit,
                                                       const Options& options) {
  return BoxQueryInternal(box, limit, options, MessageType::kBoxQuery);
}

Result<QueryClient::QueryResult> QueryClient::BoxQueryInternal(
    const Box& box, uint64_t limit, const Options& options,
    protocol::MessageType type) {
  protocol::BoxQueryRequest req;
  req.lo = box.lo();
  req.hi = box.hi();
  req.limit = limit;
  std::vector<uint8_t> body;
  WireWriter w(&body);
  protocol::EncodeBoxQueryRequest(req, &w);

  std::vector<uint8_t> reply;
  protocol::MessageHeader header;
  size_t offset = 0;
  MDS_RETURN_NOT_OK(RoundTrip(type, options, body, &reply, &header, &offset));

  WireReader r(reply.data() + offset, reply.size() - offset);
  protocol::QueryReply decoded;
  MDS_RETURN_NOT_OK(DecodeQueryReply(&r, &decoded));
  return ToQueryResult(std::move(decoded), header);
}

Result<QueryClient::KnnResult> QueryClient::Knn(
    const std::vector<double>& point, uint32_t k, const Options& options) {
  protocol::KnnRequest req;
  req.point = point;
  req.k = k;
  std::vector<uint8_t> body;
  WireWriter w(&body);
  protocol::EncodeKnnRequest(req, &w);

  std::vector<uint8_t> reply;
  protocol::MessageHeader header;
  size_t offset = 0;
  MDS_RETURN_NOT_OK(
      RoundTrip(MessageType::kKnn, options, body, &reply, &header, &offset));

  WireReader r(reply.data() + offset, reply.size() - offset);
  protocol::KnnReply decoded;
  MDS_RETURN_NOT_OK(DecodeKnnReply(&r, &decoded));
  KnnResult out;
  out.neighbors = std::move(decoded.neighbors);
  out.degraded = (header.flags & protocol::kFlagDegraded) != 0;
  out.partial = (header.flags & protocol::kFlagPartial) != 0;
  out.shards_answered = decoded.shards_answered;
  out.shards_total = decoded.shards_total;
  out.shards_mask = decoded.shards_mask;
  return out;
}

Result<QueryClient::QueryResult> QueryClient::TableSample(
    const Box& box, double percent, uint64_t n, uint64_t seed,
    const Options& options) {
  protocol::TableSampleRequest req;
  req.lo = box.lo();
  req.hi = box.hi();
  req.percent = percent;
  req.n = n;
  req.seed = seed;
  std::vector<uint8_t> body;
  WireWriter w(&body);
  protocol::EncodeTableSampleRequest(req, &w);

  std::vector<uint8_t> reply;
  protocol::MessageHeader header;
  size_t offset = 0;
  MDS_RETURN_NOT_OK(RoundTrip(MessageType::kTableSample, options, body, &reply,
                              &header, &offset));

  WireReader r(reply.data() + offset, reply.size() - offset);
  protocol::QueryReply decoded;
  MDS_RETURN_NOT_OK(DecodeQueryReply(&r, &decoded));
  return ToQueryResult(std::move(decoded), header);
}

std::vector<Result<uint64_t>> QueryClient::PointCountPipeline(
    const std::vector<Box>& boxes, const Options& options) {
  std::vector<Result<QueryResult>> replies =
      PipelineInternal(boxes, 0, options, MessageType::kPointCount);
  std::vector<Result<uint64_t>> out;
  out.reserve(replies.size());
  for (auto& r : replies) {
    if (r.ok()) {
      out.push_back(r->row_count);
    } else {
      out.push_back(r.status());
    }
  }
  return out;
}

std::vector<Result<QueryClient::QueryResult>> QueryClient::BoxQueryPipeline(
    const std::vector<Box>& boxes, uint64_t limit, const Options& options) {
  return PipelineInternal(boxes, limit, options, MessageType::kBoxQuery);
}

std::vector<Result<QueryClient::QueryResult>> QueryClient::PipelineInternal(
    const std::vector<Box>& boxes, uint64_t limit, const Options& options,
    MessageType type) {
  std::vector<Result<QueryResult>> out(
      boxes.size(), Result<QueryResult>(Status::Internal("no reply")));
  if (boxes.empty()) return out;
  if (!connected()) {
    const Status closed =
        Status::FailedPrecondition("client connection is closed");
    for (auto& slot : out) slot = closed;
    return out;
  }

  // Frame every request back-to-back into one wire buffer: the whole
  // batch leaves in one write (one RTT of request latency for k
  // requests), and the server's frame parser sees them as one
  // contiguous pipelined burst it can gang.
  std::unordered_map<uint64_t, size_t> slot_of_id;
  slot_of_id.reserve(boxes.size());
  std::vector<uint8_t> wire;
  for (size_t i = 0; i < boxes.size(); ++i) {
    const uint64_t request_id = next_request_id_++;
    slot_of_id.emplace(request_id, i);

    protocol::BoxQueryRequest req;
    req.lo = boxes[i].lo();
    req.hi = boxes[i].hi();
    req.limit = limit;

    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    MessageHeader header;
    header.type = type;
    header.flags = RequestFlags(options);
    header.request_id = request_id;
    EncodeMessageHeader(header, &w);
    w.PutU32(options.deadline_ms);  // RequestPrefix
    protocol::EncodeBoxQueryRequest(req, &w);
    protocol::AppendFrame(payload, &wire);
  }

  // One deadline bounds the whole exchange, like RoundTrip's does one.
  const IoDeadline deadline = ExchangeDeadline(options);
  Status st = sock_.WriteFull(wire.data(), wire.size(), deadline);

  // Read until every request has its reply. Replies are matched by
  // request id: the contract is per-connection completeness, not order
  // (a future server is free to interleave).
  while (st.ok() && !slot_of_id.empty()) {
    std::vector<uint8_t> reply;
    st = protocol::ReadFrame(&sock_, deadline, &reply);
    if (!st.ok()) break;

    WireReader r(reply);
    MessageHeader header;
    st = DecodeMessageHeader(&r, &header);
    if (!st.ok()) break;
    if ((header.flags & protocol::kFlagReply) == 0 || header.type != type) {
      st = Status::Internal("protocol: reply does not match request");
      break;
    }
    auto it = slot_of_id.find(header.request_id);
    if (it == slot_of_id.end()) {
      st = Status::Internal("protocol: reply for unknown request id");
      break;
    }
    const size_t slot = it->second;
    slot_of_id.erase(it);

    // Per-slot failures (bad request, overload shed, deadline expiry on
    // the server) consume the reply and fail only this slot.
    Status remote;
    Status decode = protocol::DecodeStatus(&r, &remote);
    if (!decode.ok()) {
      st = std::move(decode);
      break;
    }
    if (!remote.ok()) {
      out[slot] = AnnotateStatus(std::move(remote), "QueryClient");
      continue;
    }
    protocol::QueryReply decoded;
    decode = DecodeQueryReply(&r, &decoded);
    if (!decode.ok()) {
      st = std::move(decode);
      break;
    }
    out[slot] = ToQueryResult(std::move(decoded), header);
  }

  if (!st.ok()) {
    // Transport failure mid-batch: the stream is desynchronized. Poison
    // the connection and fail every slot still awaiting its reply.
    poisoned_ = true;
    const Status failed = AnnotateStatus(
        MapExchangeFailure(std::move(st), options, deadline), "QueryClient");
    for (const auto& entry : slot_of_id) out[entry.second] = failed;
  }
  return out;
}

Result<QueryClient::HealthResult> QueryClient::Health(const Options& options) {
  std::vector<uint8_t> reply;
  protocol::MessageHeader header;
  size_t offset = 0;
  MDS_RETURN_NOT_OK(RoundTrip(MessageType::kHealth, options, {}, &reply,
                              &header, &offset));
  WireReader r(reply.data() + offset, reply.size() - offset);
  protocol::HealthReply decoded;
  MDS_RETURN_NOT_OK(DecodeHealthReply(&r, &decoded));
  HealthResult out;
  out.draining =
      decoded.draining != 0 || (header.flags & protocol::kFlagDraining) != 0;
  out.served_rows = decoded.served_rows;
  out.dim = decoded.dim;
  return out;
}

Result<protocol::ReloadReply> QueryClient::Reload(const std::string& path,
                                                  const Options& options) {
  protocol::ReloadRequest req;
  req.path = path;
  std::vector<uint8_t> body;
  WireWriter w(&body);
  protocol::EncodeReloadRequest(req, &w);

  std::vector<uint8_t> reply;
  protocol::MessageHeader header;
  size_t offset = 0;
  MDS_RETURN_NOT_OK(RoundTrip(MessageType::kReload, options, body, &reply,
                              &header, &offset));
  WireReader r(reply.data() + offset, reply.size() - offset);
  protocol::ReloadReply decoded;
  MDS_RETURN_NOT_OK(DecodeReloadReply(&r, &decoded));
  return decoded;
}

Result<protocol::ServerStatsSnapshot> QueryClient::ServerStats(
    const Options& options) {
  std::vector<uint8_t> reply;
  protocol::MessageHeader header;
  size_t offset = 0;
  MDS_RETURN_NOT_OK(RoundTrip(MessageType::kStats, options, {}, &reply,
                              &header, &offset));
  WireReader r(reply.data() + offset, reply.size() - offset);
  protocol::ServerStatsSnapshot decoded;
  MDS_RETURN_NOT_OK(DecodeServerStats(&r, &decoded));
  return decoded;
}

}  // namespace mds
