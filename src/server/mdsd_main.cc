// mdsd — the mds query server binary.
//
//   mdsd [--port=N] [--n=ROWS] [--workers=N] [--max-in-flight=N]
//        [--seed=N] [--quick] [--port-file=PATH]
//        [--cache-bytes=N] [--no-cache]
//        [--io-threads=N] [--pipeline-batch=N]
//        [--shard-index=I --shard-count=N]
//        [--load=FILE]
//
// With --shard-count=N > 1 the process serves only the shard-index-th of N
// kd-subtree slices of the catalog (same --n and --seed on every shard);
// an mdsc coordinator (mdsc_main.cc) fans client requests out across the
// shards and merges the replies.
//
// By default, serves a synthetic SDSS color catalog over the loopback wire
// protocol (src/server/protocol.h); with --load=FILE it instead serves a
// dataset file built offline by `mdsctl build`, mmap'd read-only so
// startup skips the build entirely. --port=0 (the default) binds an
// ephemeral port and prints it; --port-file additionally writes the bound
// port to PATH so scripts (CI smoke job) can find the server without
// parsing stdout. SIGTERM/SIGINT trigger a graceful drain: in-flight
// queries complete and reply, new requests are rejected with a retryable
// status, then the process exits 0. SIGHUP (or a kReload wire request)
// hot-swaps the dataset: the new generation is loaded and validated while
// queries keep executing against the old one, then swapped in with an
// epoch bump that invalidates the response cache wholesale.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "server/server.h"

namespace {

// Signal handling: the handlers only set flags; the main thread polls
// them and runs the (non-async-signal-safe) drain or reload.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;
void HandleSignal(int) { g_stop = 1; }
void HandleHup(int) { g_reload = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mds::DatasetConfig dataset_config;
  mds::ServerConfig server_config;
  // The library default is cache-off (embedded tests want every request to
  // execute); the binary default is cache-on at 64 MiB.
  server_config.cache_bytes = 64u << 20;
  std::string port_file;
  std::string load_path;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--port", &v)) {
      server_config.port = static_cast<uint16_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--n", &v)) {
      dataset_config.num_rows = std::stoull(v);
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      server_config.num_workers = static_cast<unsigned>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--max-in-flight", &v)) {
      server_config.max_in_flight = std::stoull(v);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      dataset_config.seed = std::stoull(v);
    } else if (ParseFlag(argv[i], "--quick", &v)) {
      dataset_config.num_rows = 100000;
    } else if (ParseFlag(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (ParseFlag(argv[i], "--cache-bytes", &v)) {
      server_config.cache_bytes = std::stoull(v);
    } else if (ParseFlag(argv[i], "--no-cache", &v)) {
      server_config.cache_bytes = 0;
    } else if (ParseFlag(argv[i], "--io-threads", &v)) {
      server_config.io_threads = static_cast<unsigned>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--pipeline-batch", &v)) {
      server_config.pipeline_batch_max = std::stoull(v);
    } else if (ParseFlag(argv[i], "--shard-index", &v)) {
      dataset_config.shard_index = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--shard-count", &v)) {
      dataset_config.shard_count = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--load", &v)) {
      load_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: mdsd [--port=N] [--n=ROWS] [--workers=N] "
                   "[--max-in-flight=N] [--seed=N] [--quick] "
                   "[--port-file=PATH] [--cache-bytes=N] [--no-cache] "
                   "[--io-threads=N] [--pipeline-batch=N] "
                   "[--shard-index=I --shard-count=N] [--load=FILE]\n");
      return 2;
    }
  }

  mds::Result<mds::ServedDataset> dataset =
      mds::Status::Internal("dataset not initialized");
  if (!load_path.empty()) {
    std::fprintf(stderr, "mdsd: loading dataset file %s\n",
                 load_path.c_str());
    dataset = mds::ServedDataset::Load(load_path);
  } else {
    std::fprintf(stderr, "mdsd: building dataset (%llu rows, seed %llu)\n",
                 static_cast<unsigned long long>(dataset_config.num_rows),
                 static_cast<unsigned long long>(dataset_config.seed));
    dataset = mds::ServedDataset::Build(dataset_config);
  }
  if (!dataset.ok()) {
    std::fprintf(stderr, "mdsd: dataset build failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto served =
      std::make_shared<const mds::ServedDataset>(std::move(*dataset));

  mds::QueryServer server(served, server_config);

  // Reload handler, invoked by kReload requests and SIGHUP (serialized by
  // the server). Non-empty path: load that file. Empty path: reload the
  // current source — the last loaded file, or a fresh synthetic build with
  // the startup config (a no-op generation with byte-identical replies).
  auto last_path = std::make_shared<std::string>(load_path);
  server.SetReloadHandler(
      [dataset_config, last_path](const std::string& path)
          -> mds::Result<std::shared_ptr<mds::ServedDataset>> {
        const std::string target = path.empty() ? *last_path : path;
        mds::Result<mds::ServedDataset> next =
            target.empty() ? mds::ServedDataset::Build(dataset_config)
                           : mds::ServedDataset::Load(target);
        if (!next.ok()) return next.status();
        if (!path.empty()) *last_path = path;
        return std::make_shared<mds::ServedDataset>(std::move(*next));
      });

  mds::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "mdsd: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGHUP, HandleHup);

  if (served->shard_count() > 1) {
    std::printf("mdsd: serving shard %u/%u, %llu rows on 127.0.0.1:%u\n",
                static_cast<unsigned>(served->shard_index()),
                static_cast<unsigned>(served->shard_count()),
                static_cast<unsigned long long>(served->num_rows()),
                static_cast<unsigned>(server.port()));
  } else {
    std::printf("mdsd: serving %llu rows on 127.0.0.1:%u\n",
                static_cast<unsigned long long>(served->num_rows()),
                static_cast<unsigned>(server.port()));
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "mdsd: cannot write port file %s\n",
                   port_file.c_str());
      server.Shutdown();
      return 1;
    }
  }

  // Park until a signal arrives; the server's own threads do all the work.
  // SIGHUP wakes the park to run a reload of the current source on this
  // thread — queries keep executing against the old generation until the
  // swap.
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);  // returns on any delivered signal
    if (g_reload != 0 && g_stop == 0) {
      g_reload = 0;
      std::fprintf(stderr, "mdsd: SIGHUP received, reloading dataset\n");
      auto reloaded = server.Reload("");
      if (reloaded.ok()) {
        std::fprintf(
            stderr, "mdsd: reloaded, epoch %llu -> %llu (%llu rows)\n",
            static_cast<unsigned long long>(reloaded->old_epoch),
            static_cast<unsigned long long>(reloaded->new_epoch),
            static_cast<unsigned long long>(reloaded->served_rows));
      } else {
        std::fprintf(stderr, "mdsd: reload failed: %s\n",
                     reloaded.status().ToString().c_str());
      }
    }
  }

  std::fprintf(stderr, "mdsd: signal received, draining\n");
  server.Shutdown();
  std::fprintf(stderr, "mdsd: drained, exiting\n");
  return 0;
}
