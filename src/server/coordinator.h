#ifndef MDS_SERVER_COORDINATOR_H_
#define MDS_SERVER_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/socket.h"
#include "server/client.h"
#include "server/protocol.h"

namespace mds {

/// One backend mdsd endpoint (numeric IPv4 host).
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Shard map: shards[i] is the ordered replica list of shard i. Replica 0
/// is preferred; later replicas are failover (and hedge) targets, so list
/// the nearest replica first. Shard i must serve the i-th of shard_count
/// kd-subtree slices of the same catalog — every replica of shard i runs
/// `mdsd --shard-index=i --shard-count=N` with identical --n and --seed.
struct ShardMap {
  std::vector<std::vector<BackendAddress>> shards;
};

/// Parses a shard-map string: shards are separated by ';' or newlines,
/// replicas of one shard by ','. Example ("2 shards x 2 replicas"):
///
///   127.0.0.1:7001,127.0.0.1:7101;127.0.0.1:7002,127.0.0.1:7102
///
/// The same grammar reads a shard-map file (one shard per line; blank
/// lines and '#' comment lines are skipped).
Result<ShardMap> ParseShardMap(const std::string& text);

/// mdsc tuning knobs.
struct CoordinatorConfig {
  /// Loopback TCP port; 0 picks an ephemeral port (Coordinator::port()).
  uint16_t port = 0;
  /// Connections beyond this are accepted and closed immediately.
  size_t max_connections = 256;
  /// Admission cap on concurrently coordinated client requests; beyond it
  /// requests are shed with a retryable kUnavailable, like mdsd.
  size_t max_in_flight = 256;
  /// Per-frame read deadline on client connections (slow-loris / idle
  /// close); 0 = none.
  uint32_t idle_timeout_ms = 30000;
  /// TCP connect bound for backend connections.
  uint64_t connect_timeout_ms = 2000;
  /// Deadline applied to backend sub-requests when the client request
  /// carries none: a wedged backend must not stall a fan-out forever —
  /// the bound is what lets failover and hedging act.
  uint32_t sub_deadline_ms = 10000;
  /// Fixed hedge delay in milliseconds; 0 = adaptive (a shard's observed
  /// p99 sub-request latency, once hedge_min_samples successes have been
  /// recorded — before that, no hedging). Hedging also requires the shard
  /// to have >= 2 replicas.
  uint32_t hedge_delay_ms = 0;
  uint64_t hedge_min_samples = 64;
  /// Base/cap of the per-replica breaker open interval: after the breaker
  /// opens (breaker_failure_threshold consecutive failures) the replica
  /// is skipped for an equal-jittered exponential interval derived from
  /// min(replica_backoff_ms * 2^(k-1), replica_backoff_max_ms). All
  /// replicas of a shard open => they are tried anyway (better a
  /// likely-failing attempt than certain failure).
  uint32_t replica_backoff_ms = 500;
  uint32_t replica_backoff_max_ms = 8000;
  /// Consecutive failures that open a replica's circuit breaker. While
  /// open the replica costs zero request-path attempts; when the jittered
  /// backoff expires, a single half-open probe attempt is admitted and
  /// its outcome closes or re-opens the breaker.
  uint32_t breaker_failure_threshold = 5;
  /// Token-bucket retry budget per shard: every primary attempt accrues
  /// retry_budget_ratio tokens (capped at retry_budget_cap) and every
  /// failover or hedge leg spends one. An unhealthy shard can therefore
  /// amplify traffic by at most ~ratio in steady state instead of
  /// replica-count-fold. The bucket starts full so cold-start failovers
  /// are never denied.
  double retry_budget_ratio = 0.1;
  uint32_t retry_budget_cap = 32;
  /// Client-side exchange slack for backend legs (QueryOptions::
  /// exchange_slack_ms): the leg's read deadline fires this soon after
  /// the leg's deadline share, so a blackholed backend costs ~budget+
  /// leg_slack_ms, not budget+2s.
  uint32_t leg_slack_ms = 25;
  /// Seed for backoff jitter; 0 = seeded from entropy. Fixed seeds make
  /// chaos-campaign runs reproducible.
  uint64_t jitter_seed = 0;
  /// Scatter worker threads shared by all in-flight fan-outs;
  /// 0 = min(32, max(4, 2 * total replicas)).
  unsigned fanout_threads = 0;
  /// Idle pooled connections kept per replica.
  size_t pool_connections_per_replica = 8;
};

// --- merge helpers ---------------------------------------------------------
//
// Pure functions, unit-tested directly (coordinator_test).

/// k-way merge of per-shard kNN replies: each input list is sorted
/// ascending by (squared_distance, id) — the order a single mdsd returns —
/// and the output is the first min(k, total) of the merged union in that
/// same order. Ties across shards break by id, exactly like the engine's
/// Neighbor::operator<, so the merge of shard replies equals a single
/// server's reply bit for bit. Empty inputs are fine.
std::vector<protocol::WireNeighbor> MergeKnnNeighbors(
    const std::vector<std::vector<protocol::WireNeighbor>>& per_shard,
    uint32_t k);

/// Folds shard box-like replies in shard order: row_count and the I/O
/// counters sum, objids concatenate (shard order == global clustered
/// order, so concatenation is the single-server order), degraded ORs,
/// chosen_path collapses to the common value or "mixed". `limit` != 0
/// truncates the concatenated objids, matching the single server's TOP.
protocol::QueryReply MergeQueryReplies(
    std::vector<protocol::QueryReply> per_shard, uint64_t limit);

// ---------------------------------------------------------------------------

/// mdsc — the shard coordinator: a server-shaped front end that speaks the
/// exact mdsd wire protocol to its clients and fans every query out to N
/// backend shards (each possibly replicated) over pooled QueryClient
/// connections, merging the replies.
///
/// Routing and merge semantics (DESIGN.md "Scale-out"):
///  - kPointCount / kBoxQuery: scatter to every shard unchanged (the limit
///    included — each shard's contribution to a TOP(limit) is at most
///    limit rows); counts sum, objids concatenate in shard order.
///  - kKnn: per-shard k_i = min(k, shard rows); replies k-way merge by
///    (squared_distance, id). k > total served rows is InvalidArgument,
///    exactly like a single server.
///  - kTableSample: scatter unchanged, concatenate, truncate to n. Page
///    sampling is physical-layout-dependent, so the sampled rows match a
///    single server's distribution and determinism (same seed => same
///    reply through the same topology) but not its exact row set.
///  - kHealth / kStats: answered by the coordinator itself; stats carry
///    per-shard routing counters (ShardStatsEntry).
///  - kReload: broadcast to EVERY replica of EVERY shard (a fleet where
///    only some replicas swapped would answer the same query differently
///    depending on routing); all must succeed or the reload fails with
///    the first refusal. The merged reply carries the min old/new epochs
///    over the fleet and the summed per-shard served_rows.
///
/// Failover: replicas are tried in preference order; an attempt that
/// fails with a retryable transport-or-shed status (kUnavailable, kIOError,
/// kNotFound) or a leg deadline expiry moves to the next admitted replica
/// and counts one failover. Non-retryable backend errors (e.g.
/// InvalidArgument) return immediately. Every extra leg (failover or
/// hedge) spends a token from the shard's retry budget and must fit in
/// the request's remaining deadline budget; breaker_failure_threshold
/// consecutive failures open a replica's circuit breaker, after which it
/// costs one half-open probe per jittered backoff interval instead of
/// per-request timeouts. Requests carrying kFlagAllowPartial degrade to a
/// merged reply from the surviving shards (kFlagPartial + kFlagDegraded,
/// shard coverage on the wire) when a shard is exhausted.
///
/// Hedging: while a shard's primary attempt is outstanding, the fan-out
/// waits the hedge delay (fixed, or the shard's observed p99); on expiry
/// a second attempt starts on the next replica, and the first success
/// wins. Hedges fired/won are counted per shard.
///
/// Threading model: one blocking accept thread plus one handler thread
/// per client connection (the coordinator holds no dataset and does no
/// engine work — its per-connection state is one stack, and a handler
/// spends its life blocked on the scatter anyway); sub-requests run on a
/// shared fan-out thread pool so one request's shards proceed in
/// parallel. Graceful drain mirrors mdsd: RequestDrain() sheds new query
/// requests with kUnavailable + kFlagDraining while admitted fan-outs
/// complete; Shutdown() drains, stops the acceptor, shuts the read side
/// of every client connection (in-flight replies still flush) and joins.
class Coordinator {
 public:
  Coordinator(const ShardMap& map, const CoordinatorConfig& config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Probes every shard (first reachable replica wins), validates that
  /// dimensions agree across shards, binds the port and starts the accept
  /// thread. Fails if any shard has no reachable replica.
  Status Start();

  /// Bound port (valid after Start).
  uint16_t port() const { return port_; }

  bool draining() const { return state_.load() != State::kRunning; }

  /// Stops accepting connections and sheds new query requests; admitted
  /// fan-outs complete. Safe to call more than once.
  void RequestDrain();

  /// Full graceful stop. Idempotent.
  void Shutdown();

  /// The same snapshot a kStats request returns (front-end counters plus
  /// per-shard routing counters).
  protocol::ServerStatsSnapshot Stats() const;

  /// Total rows served across shards / their common dimension (valid
  /// after Start; served_rows can move when a kReload lands a new
  /// generation).
  uint64_t served_rows() const { return served_rows_.load(); }
  uint32_t dim() const { return dim_; }

 private:
  enum class State { kRunning, kDraining, kStopped };

  /// One backend replica: its address, a small pool of idle connections,
  /// and circuit-breaker state. The breaker is derived state:
  /// consecutive_failures < breaker_failure_threshold = closed;
  /// otherwise open until retry_at_ms, then half-open (one probe admitted
  /// via the `probing` flag until its outcome lands).
  struct Replica {
    BackendAddress addr;
    std::mutex mu;
    std::vector<QueryClient> idle;  // pooled connections, guarded by mu
    std::atomic<uint32_t> consecutive_failures{0};
    /// Steady-clock milliseconds before which an open breaker skips the
    /// replica (0 = never failed).
    std::atomic<int64_t> retry_at_ms{0};
    /// True while a half-open probe attempt is in flight.
    std::atomic<bool> probing{false};
  };

  /// One shard: its replicas plus routing counters and the retry token
  /// bucket (milli-tokens so a fractional accrual ratio stays integral).
  struct Shard {
    std::vector<std::unique_ptr<Replica>> replicas;
    /// From the Start() probe; re-stamped by a successful kReload
    /// broadcast (handler threads read it while queries validate k).
    std::atomic<uint64_t> served_rows{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> backend_errors{0};
    std::atomic<uint64_t> failovers{0};
    std::atomic<uint64_t> hedges_fired{0};
    std::atomic<uint64_t> hedges_won{0};
    std::atomic<uint64_t> retries_denied{0};
    std::atomic<uint64_t> breaker_short_circuits{0};
    std::atomic<int64_t> retry_budget_milli{0};  // filled by the ctor
    Histogram latency_us;  // successful sub-request round trips
  };

  /// One decoded client query request, in the shape sub-requests are
  /// re-issued in (per-shard kNN k varies, so shards cannot share one
  /// encoded body).
  struct SubRequest {
    protocol::MessageType type = protocol::MessageType::kPointCount;
    QueryOptions options;
    /// When the client frame was decoded — the zero point the deadline
    /// budget is decremented from before every leg.
    std::chrono::steady_clock::time_point arrival;
    /// The client's own deadline_ms (0 = none): the end-to-end budget.
    /// options.deadline_ms is recomputed per leg from what remains.
    uint32_t budget_ms = 0;
    /// Client sent kFlagAllowPartial: exhausted shards degrade the reply
    /// instead of failing it.
    bool allow_partial = false;
    std::vector<double> lo, hi;  // box-like
    uint64_t limit = 0;
    std::vector<double> point;  // kNN
    uint32_t k = 0;
    double percent = 1.0;  // sample
    uint64_t n = 1;
    uint64_t sample_seed = 0;
  };

  /// What one backend attempt returns.
  struct SubReply {
    protocol::QueryReply query;                     // box-like types
    std::vector<protocol::WireNeighbor> neighbors;  // kKnn
  };

  /// Per-shard slot of one fan-out: attempt jobs complete it under mu.
  struct ShardCall {
    Status status = Status::OK();
    SubReply reply;
    bool done = false;     ///< a success landed, or every attempt failed
    bool hedged = false;   ///< a hedge attempt has been launched
    int outstanding = 0;   ///< attempts still running
    std::chrono::steady_clock::time_point hedge_at;
    bool hedge_possible = false;
    /// Clients with an exchange in flight for this call, registered under
    /// Scatter::mu. Whichever attempt completes the call Abort()s the
    /// rest, so a losing hedge leg fails its read promptly instead of
    /// sitting on a connection with a stale correlated reply due.
    std::vector<QueryClient*> inflight;
  };

  /// One client request's scatter state, shared by the handler thread and
  /// the attempt jobs.
  struct Scatter {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<ShardCall> calls;
    size_t done_count = 0;
  };

  class FanoutPool;
  struct ClientConn;

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<ClientConn> conn);
  /// Handles one decoded request frame; returns false when the connection
  /// must close (protocol violation).
  bool HandleFrame(ClientConn* conn, std::vector<uint8_t> payload);
  void HandleHealth(ClientConn* conn, const protocol::MessageHeader& header);
  void HandleStats(ClientConn* conn, const protocol::MessageHeader& header);
  /// Broadcasts a decoded kReload to every replica of every shard; on
  /// success re-stamps the per-shard and total served_rows.
  void HandleReload(ClientConn* conn, const protocol::MessageHeader& header,
                    const protocol::ReloadRequest& request,
                    uint32_t deadline_ms);
  /// Decode, validate, scatter, merge, reply for one query request.
  void HandleQuery(ClientConn* conn, const protocol::MessageHeader& header,
                   const std::vector<uint8_t>& payload, size_t body_offset,
                   uint32_t deadline_ms);

  /// Decodes and validates the request body into a SubRequest template
  /// (per-shard k is filled in at scatter time).
  Status DecodeSubRequest(const protocol::MessageHeader& header,
                          const uint8_t* body, size_t body_len,
                          uint32_t deadline_ms, SubRequest* out);

  /// Shard-coverage summary of one scatter, reported on the reply wire.
  struct ScatterOutcome {
    uint32_t answered = 0;
    uint32_t total = 0;
    uint64_t mask = 0;       ///< bit s set = shard s answered
    bool partial = false;    ///< answered < total and the reply is usable
  };

  /// Runs the scatter-gather for one validated request. On success the
  /// merged reply is in *merged / *neighbors (by type) and *outcome says
  /// which shards contributed (outcome->partial marks a degraded merge of
  /// the survivors, possible only when req.allow_partial).
  Status ScatterGather(const SubRequest& req, protocol::QueryReply* merged,
                       std::vector<protocol::WireNeighbor>* neighbors,
                       ScatterOutcome* outcome);

  /// One attempt: walk the shard's replicas starting at replica_offset,
  /// failing over on retryable errors while the deadline and retry
  /// budgets allow, and complete the ShardCall. The request is shared
  /// because a losing hedge can outlive the client request's stack frame.
  void RunAttempt(size_t shard_index, size_t replica_offset,
                  std::shared_ptr<const SubRequest> req, uint32_t k_for_shard,
                  std::shared_ptr<Scatter> scatter, size_t call_index,
                  bool is_hedge);
  /// One replica exchange under `leg_options` (the per-leg deadline
  /// share). Returns the backend's status; *aborted reports that another
  /// attempt completed the call while this exchange ran — an aborted
  /// exchange's connection is never pooled and its outcome must not
  /// count against the replica.
  Status AttemptReplica(Shard* shard, Replica* replica, const SubRequest& req,
                        const QueryOptions& leg_options, uint32_t k_for_shard,
                        SubReply* out, Scatter* scatter, size_t call_index,
                        bool* aborted);

  /// Remaining end-to-end deadline budget for one more leg. False = the
  /// budget is spent (only possible when the request carried a deadline).
  bool LegDeadline(const SubRequest& req, uint32_t* leg_deadline_ms) const;

  /// Circuit-breaker admission for one replica.
  enum class Admit {
    kClosed,  ///< healthy: admit
    kProbe,   ///< half-open: admit one probe (caller must EndProbe)
    kSkip,    ///< open (or a probe is already in flight): skip
  };
  Admit AdmitReplica(Replica* replica);
  void EndProbe(Replica* replica) {
    replica->probing.store(false, std::memory_order_release);
  }

  /// Token-bucket retry budget: accrued per primary attempt, spent (one
  /// token) per failover or hedge leg.
  void AccrueRetryBudget(Shard* shard);
  bool SpendRetryToken(Shard* shard);

  Result<QueryClient> AcquireClient(Replica* replica);
  void ReleaseClient(Replica* replica, QueryClient client);
  bool ReplicaHealthy(const Replica& replica) const;
  void MarkReplicaFailure(Replica* replica);
  void MarkReplicaSuccess(Replica* replica);

  /// Hedge delay for a shard; returns false when hedging should not fire
  /// (single replica, or adaptive mode without enough samples).
  bool HedgeDelay(const Shard& shard, std::chrono::microseconds* delay) const;

  void WriteReplyFrame(ClientConn* conn, const protocol::MessageHeader& req,
                       const Status& status, uint32_t extra_flags,
                       const std::function<void(WireWriter*)>& encode_body);
  void RecordReply(protocol::MessageType type,
                   std::chrono::steady_clock::time_point arrival,
                   const Status& status);

  CoordinatorConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> served_rows_{0};
  uint32_t dim_ = 0;
  /// Serializes whole-fleet reload broadcasts (mirrors QueryServer's
  /// per-server reload_mu_).
  std::mutex reload_mu_;
  uint16_t port_ = 0;

  TcpListener listener_;
  std::thread accept_thread_;
  std::unique_ptr<FanoutPool> fanout_;

  std::atomic<State> state_{State::kStopped};
  bool started_ = false;
  std::atomic<bool> stop_accept_{false};

  // Live client connections, so Shutdown can unblock their read loops.
  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<ClientConn>> conns_;
  std::vector<std::thread> handler_threads_;

  std::atomic<size_t> in_flight_{0};

  struct Counters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> requests_total{0};
    std::atomic<uint64_t> replies_ok{0};
    std::atomic<uint64_t> replies_error{0};
    std::atomic<uint64_t> rejected_overload{0};
    std::atomic<uint64_t> rejected_draining{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> in_flight_peak{0};
    /// Backend legs whose read deadline fired (slow-but-alive replicas).
    std::atomic<uint64_t> deadline_timeouts{0};
    /// Replies answered from a strict subset of shards (kFlagPartial).
    std::atomic<uint64_t> partial_replies{0};
    std::atomic<uint64_t> type_errors[protocol::kNumRequestTypes] = {};
  };
  mutable Counters counters_;
  Histogram latency_us_[protocol::kNumRequestTypes];

  /// Backoff jitter source (common/rng.h is not thread-safe; attempts on
  /// many fan-out threads mark failures concurrently).
  mutable std::mutex rng_mu_;
  mutable Rng rng_;
};

}  // namespace mds

#endif  // MDS_SERVER_COORDINATOR_H_
