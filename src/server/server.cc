#include "server/server.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "common/rng.h"
#include "core/knn.h"
#include "core/query_engine.h"
#include "core/query_planner.h"

namespace mds {

namespace {

using protocol::MessageHeader;
using protocol::MessageType;
using protocol::TypeIndex;

/// Bound on any single reply flush: a client that stops draining its
/// socket cannot hold a write queue (and its buffers) forever. Armed when
/// the kernel stops taking bytes, cancelled when the queue drains.
constexpr uint32_t kReplyWriteTimeoutMs = 30000;

/// accept() fd-exhaustion backoff bounds: the listener is deregistered and
/// re-armed after a bounded, exponentially growing delay instead of
/// busy-spinning on the forever-readable listen fd.
constexpr uint64_t kAcceptBackoffMinMs = 10;
constexpr uint64_t kAcceptBackoffMaxMs = 1000;

/// Shutdown grace for flushing pending replies to slow readers before
/// their connections are closed anyway.
constexpr uint64_t kDrainFlushGraceMs = 5000;

/// Resource cap on one kNN request (the result is k * 16 bytes).
constexpr uint32_t kMaxKnnK = 1u << 16;

/// Flags that make a request uncacheable: skip_corrupt can produce a
/// degraded answer tied to a transient fault, and planner-pinning hints
/// are diagnostics whose replies (chosen_path, I/O counters) must reflect
/// a real execution.
constexpr uint32_t kUncacheableFlags = protocol::kFlagSkipCorrupt |
                                       protocol::kFlagHintFullScan |
                                       protocol::kFlagHintIndex;

/// True for request types whose reply is a pure function of (dataset
/// epoch, request body): point counts, box queries, kNN and seeded
/// TABLESAMPLE (the RNG seed travels in the body). Health and stats are
/// answered inline and change between calls.
bool CacheableRequest(const protocol::MessageHeader& header) {
  if ((header.flags & kUncacheableFlags) != 0) return false;
  switch (header.type) {
    case MessageType::kPointCount:
    case MessageType::kBoxQuery:
    case MessageType::kKnn:
    case MessageType::kTableSample:
      return true;
    default:
      return false;
  }
}

/// True for requests the worker may gang into one ExecuteBatch call:
/// box-like queries with no behavior-altering flags. kNN has no access
/// path, and hinted/skip-corrupt requests take the planner's special
/// branches — each of those executes alone.
bool Gangable(const protocol::MessageHeader& header) {
  if ((header.flags & kUncacheableFlags) != 0) return false;
  switch (header.type) {
    case MessageType::kPointCount:
    case MessageType::kBoxQuery:
    case MessageType::kTableSample:
      return true;
    default:
      return false;
  }
}

void RelaxedMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const ServedDataset> dataset,
                         const ServerConfig& config)
    : dataset_(std::move(dataset)), config_(config) {
  if (config_.max_in_flight == 0) config_.max_in_flight = 1;
  if (config_.io_threads == 0) config_.io_threads = 1;
  if (config_.pipeline_batch_max == 0) config_.pipeline_batch_max = 1;
  if (config_.cache_bytes != 0) {
    cache_ = std::make_unique<ResponseCache>(config_.cache_bytes);
  }
}

QueryServer::QueryServer(const ServedDataset* dataset,
                         const ServerConfig& config)
    // Aliasing constructor with an empty owner: a non-owning shared_ptr,
    // preserving the legacy caller-owns-the-dataset contract.
    : QueryServer(std::shared_ptr<const ServedDataset>(
                      std::shared_ptr<const void>(), dataset),
                  config) {}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto listener = TcpListener::Listen(config_.port);
  if (!listener.ok()) {
    return AnnotateStatus(listener.status(), "QueryServer::Start");
  }
  listener_ = std::move(*listener);
  port_ = listener_.port();
  MDS_RETURN_NOT_OK(listener_.SetNonBlocking());
  {
    std::lock_guard<std::mutex> lock(dataset_mu_);
    pool_at_start_ = dataset_->pool()->Snapshot();
  }

  loops_.clear();
  next_loop_ = 0;
  for (unsigned i = 0; i < config_.io_threads; ++i) {
    loops_.push_back(std::make_unique<IoLoop>());
    if (!loops_.back()->loop.valid()) {
      loops_.clear();
      return Status::Internal("QueryServer::Start: epoll unavailable");
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = false;
  }
  debug_fail_remaining_ = config_.debug_fail_first_accepts;
  accept_backoff_ms_ = 0;

  // Register the listener before the loop thread exists — no concurrent
  // access yet, and the thread start is the happens-before edge.
  Status added = loops_[0]->loop.Add(listener_.fd(), EventLoop::kReadable,
                                     [this](uint32_t) { OnAcceptReady(); });
  if (!added.ok()) {
    loops_.clear();
    return AnnotateStatus(added, "QueryServer::Start");
  }
  listener_registered_ = true;

  started_ = true;
  state_.store(State::kRunning);
  workers_ = std::make_unique<TaskPool>(config_.num_workers);
  worker_runner_ = std::thread([this] {
    workers_->Run([this](unsigned) { WorkerLoop(); });
  });
  for (auto& io : loops_) {
    IoLoop* p = io.get();
    p->thread = std::thread([p] { p->loop.Run(); });
  }
  return Status::OK();
}

// --- dataset lifecycle -------------------------------------------------------

void QueryServer::SnapshotDataset(
    std::shared_ptr<const ServedDataset>* dataset, uint64_t* epoch) const {
  std::lock_guard<std::mutex> lock(dataset_mu_);
  *dataset = dataset_;
  if (epoch != nullptr) *epoch = dataset_->epoch();
}

void QueryServer::SetReloadHandler(ReloadHandler handler) {
  std::lock_guard<std::mutex> lock(dataset_mu_);
  reload_handler_ = std::move(handler);
}

Result<protocol::ReloadReply> QueryServer::Reload(const std::string& path) {
  // One reload at a time: concurrent kReload requests (or a SIGHUP racing
  // an admin request) serialize here instead of interleaving their swaps.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);

  ReloadHandler handler;
  std::shared_ptr<const ServedDataset> current;
  {
    std::lock_guard<std::mutex> lock(dataset_mu_);
    handler = reload_handler_;
    current = dataset_;
  }
  if (!handler) {
    return Status::FailedPrecondition(
        "QueryServer::Reload: no reload handler installed");
  }

  // The load runs on the calling thread, off dataset_mu_ — queries keep
  // executing against the current snapshot for the whole build.
  auto next = handler(path);
  if (!next.ok()) {
    return AnnotateStatus(next.status(),
                          "QueryServer::Reload('" + path + "')");
  }
  if (*next == nullptr) {
    return Status::Internal(
        "QueryServer::Reload: handler returned no dataset");
  }

  // Same refusal taxonomy as the coordinator's startup probe: the new
  // generation must answer the same query space as the one it replaces.
  if ((*next)->dim() != current->dim()) {
    return Status::FailedPrecondition(
        "reload refused: new dataset serves dimension " +
        std::to_string((*next)->dim()) + ", expected " +
        std::to_string(current->dim()));
  }
  if ((*next)->shard_index() != current->shard_index() ||
      (*next)->shard_count() != current->shard_count()) {
    return Status::FailedPrecondition(
        "reload refused: new dataset is shard " +
        std::to_string((*next)->shard_index()) + "/" +
        std::to_string((*next)->shard_count()) + ", expected shard " +
        std::to_string(current->shard_index()) + "/" +
        std::to_string(current->shard_count()));
  }

  protocol::ReloadReply reply;
  {
    std::lock_guard<std::mutex> lock(dataset_mu_);
    // Swap first, then bump: a request racing this window can at worst
    // insert an old-epoch cache entry, which the bump invalidates
    // wholesale. (Bump-then-swap could cache an old-data reply under the
    // NEW epoch — a persistent lie.) In-flight requests that snapshotted
    // the old generation finish against it; its pages stay alive until
    // the last shared_ptr drops.
    (*next)->AdoptEpochFrom(*dataset_);
    reply.old_epoch = dataset_->epoch();
    dataset_ = std::move(*next);
    dataset_->BumpEpoch();
    reply.new_epoch = dataset_->epoch();
    reply.served_rows = dataset_->num_rows();
    pool_at_start_ = dataset_->pool()->Snapshot();
  }
  return reply;
}

// --- reactor: accept path ---------------------------------------------------

void QueryServer::OnAcceptReady() {
  IoLoop* io0 = loops_[0].get();
  if (state_.load() != State::kRunning) {
    if (listener_registered_) {
      io0->loop.Remove(listener_.fd());
      listener_registered_ = false;
    }
    return;
  }
  // Drain the backlog to EAGAIN; the listener stays level-triggered so a
  // partial drain re-fires.
  for (;;) {
    auto accepted = listener_.AcceptNonBlocking();
    if (!accepted.ok()) {
      const StatusCode code = accepted.status().code();
      if (code == StatusCode::kResourceExhausted) {
        // Out of fds: the pending connection stays queued, so the fd
        // would stay readable and the loop would spin. Deregister and
        // come back after a bounded, growing backoff.
        counters_.accept_errors.fetch_add(1, std::memory_order_relaxed);
        BackOffAccept();
      } else if (code != StatusCode::kUnavailable) {
        // Unrecoverable listener error; stop accepting. (kUnavailable is
        // EAGAIN — backlog drained — or the drain-path shutdown.)
        if (listener_registered_) {
          io0->loop.Remove(listener_.fd());
          listener_registered_ = false;
        }
      }
      return;
    }
    if (debug_fail_remaining_ > 0) {
      // Test hook: behave exactly as if accept() had returned EMFILE.
      --debug_fail_remaining_;
      counters_.accept_errors.fetch_add(1, std::memory_order_relaxed);
      BackOffAccept();
      return;  // the accepted socket closes on scope exit
    }
    accept_backoff_ms_ = 0;
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    AdoptConnection(std::move(*accepted));
  }
}

void QueryServer::BackOffAccept() {
  if (listener_registered_) {
    loops_[0]->loop.Remove(listener_.fd());
    listener_registered_ = false;
  }
  accept_backoff_ms_ =
      accept_backoff_ms_ == 0
          ? kAcceptBackoffMinMs
          : std::min(accept_backoff_ms_ * 2, kAcceptBackoffMaxMs);
  // Equal jitter (base/2 + uniform(0, base/2]): fd exhaustion is usually
  // fleet-wide (a shared client burst), and deterministic doubling would
  // re-arm every replica's acceptor on the same tick. Loop-0 thread only,
  // like the rest of the accept state.
  const uint64_t backoff_ms =
      accept_backoff_ms_ / 2 +
      accept_rng_.NextBounded(accept_backoff_ms_ / 2 + 1);
  loops_[0]->loop.AddTimer(backoff_ms, [this] {
    IoLoop* io0 = loops_[0].get();
    if (io0->shutting_down || state_.load() != State::kRunning) return;
    if (!listener_registered_ && listener_.valid()) {
      Status added = io0->loop.Add(listener_.fd(), EventLoop::kReadable,
                                   [this](uint32_t) { OnAcceptReady(); });
      if (added.ok()) {
        listener_registered_ = true;
        OnAcceptReady();  // serve anything that queued during the backoff
      }
    }
  });
}

void QueryServer::AdoptConnection(Socket sock) {
  if (open_connections_.load(std::memory_order_relaxed) >=
      config_.max_connections) {
    // Connection-level shed: no protocol state yet, so close is the only
    // honest answer (request-level shedding replies kUnavailable).
    counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    return;  // sock closes on scope exit
  }
  (void)sock.SetNoDelay();
  auto conn = std::make_shared<Conn>();
  conn->fd = sock.fd();
  conn->bsock = BufferedSocket(std::move(sock));
  IoLoop* home = loops_[next_loop_++ % loops_.size()].get();
  conn->home = home;
  open_connections_.fetch_add(1, std::memory_order_relaxed);
  if (home == loops_[0].get()) {
    RegisterConnection(home, std::move(conn));
  } else {
    home->loop.Post(
        [this, home, conn] { RegisterConnection(home, conn); });
  }
}

void QueryServer::RegisterConnection(IoLoop* home,
                                     std::shared_ptr<Conn> conn) {
  if (home->shutting_down) {
    counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;  // socket closes with the Conn
  }
  home->conns.push_back(conn);
  ArmIdleTimer(conn);
  Status added = home->loop.Add(
      conn->fd, EventLoop::kReadable,
      [this, conn](uint32_t ready) { OnConnEvent(conn, ready); });
  if (!added.ok()) CloseConn(conn);
}

// --- reactor: per-connection events -----------------------------------------

void QueryServer::ArmIdleTimer(const std::shared_ptr<Conn>& conn) {
  if (conn->idle_timer != 0) {
    conn->home->loop.CancelTimer(conn->idle_timer);
    conn->idle_timer = 0;
  }
  if (config_.idle_timeout_ms == 0) return;
  conn->idle_timer =
      conn->home->loop.AddTimer(config_.idle_timeout_ms, [this, conn] {
        conn->idle_timer = 0;
        // Idle or mid-frame stall (slow-loris): stop reading. Not a
        // protocol violation — the same taxonomy as the blocking read
        // deadline this replaces.
        if (!conn->closed) StopReading(conn);
      });
}

void QueryServer::OnConnEvent(const std::shared_ptr<Conn>& conn,
                              uint32_t ready) {
  if (conn->closed) return;
  if (ready & EventLoop::kWritable) {
    FlushConn(conn);
    if (conn->closed) return;
  }
  if (conn->read_eof) {
    // Reading already stopped; hangup/error just accelerates the flush
    // (or surfaces the failure that closes the connection).
    if (ready & (EventLoop::kHangup | EventLoop::kError)) FlushConn(conn);
    return;
  }
  if (ready &
      (EventLoop::kReadable | EventLoop::kHangup | EventLoop::kError)) {
    const BufferedSocket::IoResult fill = conn->bsock.Fill();
    Batch gang;
    const bool reading = ProcessFrames(conn, &gang);
    FlushGang(&gang);
    if (conn->closed) return;
    if (reading && (fill == BufferedSocket::IoResult::kClosed ||
                    fill == BufferedSocket::IoResult::kError)) {
      if (fill == BufferedSocket::IoResult::kError) {
        CloseConn(conn);
      } else {
        // Peer EOF. A partial frame left in the buffer is a mid-frame
        // close; a clean boundary is the normal end of a connection.
        // Either way no more frames arrive — stop reading and let any
        // admitted replies flush.
        StopReading(conn);
      }
    }
  }
}

bool QueryServer::ProcessFrames(const std::shared_ptr<Conn>& conn,
                                Batch* gang) {
  size_t frames = 0;
  for (;;) {
    if (conn->bsock.size() < protocol::kFramePrefixBytes) break;
    WireReader prefix(conn->bsock.data(), protocol::kFramePrefixBytes);
    const uint32_t magic = prefix.GetU32();
    const uint32_t len = prefix.GetU32();
    const uint32_t crc = prefix.GetU32();
    if (magic != protocol::kFrameMagic || len > protocol::kMaxPayloadBytes) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      StopReading(conn);
      return false;
    }
    if (conn->bsock.size() < protocol::kFramePrefixBytes + len) break;
    const uint8_t* body = conn->bsock.data() + protocol::kFramePrefixBytes;
    if (Crc32c(body, len) != crc) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      StopReading(conn);
      return false;
    }
    std::vector<uint8_t> payload(body, body + len);
    conn->bsock.Consume(protocol::kFramePrefixBytes + len);
    counters_.bytes_in.fetch_add(protocol::kFramePrefixBytes + len,
                                 std::memory_order_relaxed);
    ++frames;
    if (!HandleFrame(conn, std::move(payload), gang)) {
      StopReading(conn);
      return false;
    }
  }
  // A completed frame with an empty buffer is a frame boundary: restart
  // the idle clock, exactly like the per-frame blocking read deadline. A
  // partial frame keeps the clock from its last boundary (slow-loris).
  if (frames > 0 && conn->bsock.size() == 0 && !conn->closed &&
      !conn->read_eof) {
    ArmIdleTimer(conn);
  }
  return true;
}

bool QueryServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                              std::vector<uint8_t> payload, Batch* gang) {
  PendingRequest req;
  req.conn = conn;
  req.payload = std::move(payload);
  req.arrival = std::chrono::steady_clock::now();
  WireReader r(req.payload);
  if (!DecodeMessageHeader(&r, &req.header).ok()) {
    // Unknown version or truncated header: nothing trustworthy to echo —
    // close the connection (the documented contract for version skew).
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  counters_.requests_total.fetch_add(1, std::memory_order_relaxed);

  // Snapshot the serving generation and its cache epoch as one consistent
  // pair: Reload swaps the pointer and bumps the (shared) epoch under the
  // same mutex, so a request never pairs old data with the new epoch.
  SnapshotDataset(&req.dataset, &req.cache_epoch);

  // All request bodies begin with the deadline prefix.
  req.deadline_ms = r.GetU32();
  req.body_offset = req.payload.size() - r.remaining();
  if (!r.ok()) {
    WriteErrorReply(req, Status::InvalidArgument("request body truncated"),
                    0);
    return true;
  }
  if (req.deadline_ms == 0) req.deadline_ms = config_.default_deadline_ms;

  switch (req.header.type) {
    case MessageType::kHealth:
      HandleHealth(req);
      return true;
    case MessageType::kStats:
      HandleStats(req);
      return true;
    case MessageType::kPointCount:
    case MessageType::kBoxQuery:
    case MessageType::kKnn:
    case MessageType::kTableSample:
    case MessageType::kReload:
      // kReload rides the worker path: uncacheable (CacheableRequest is
      // false) and non-gangable (Gangable is false), so it lands in its
      // own singleton batch behind admission control.
      break;
    default:
      WriteErrorReply(
          req,
          Status::Unimplemented("unknown request type " +
                                std::to_string(static_cast<unsigned>(
                                    req.header.type))),
          0);
      return true;
  }

  // Response-cache fast path, on this I/O thread: a hit is answered
  // immediately and never touches admission control, the queue or the
  // deadline machinery. A miss tags the request to populate the cache
  // once its reply is finalized.
  if (TryServeFromCache(&req)) return true;

  // Admission control: reject rather than buffer beyond the cap.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (state_.load() != State::kRunning) {
      lock.unlock();
      counters_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
      WriteErrorReply(req,
                      Status::Unavailable("server draining; retry elsewhere"),
                      protocol::kFlagDraining);
      return true;
    }
    if (in_flight_ >= config_.max_in_flight) {
      lock.unlock();
      counters_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      WriteErrorReply(
          req, Status::Unavailable("server overloaded; retry with backoff"),
          0);
      return true;
    }
    ++in_flight_;
    RelaxedMax(&counters_.in_flight_peak, in_flight_);
  }
  req.admitted = true;
  ++conn->admitted_open;

  // Pipelining: contiguous gangable cache misses from this readiness
  // event ride one batch into a single ExecuteBatch call; anything else
  // executes alone (and splits the gang to preserve queue order).
  if (!Gangable(req.header)) {
    FlushGang(gang);
    Batch single;
    single.push_back(std::move(req));
    EnqueueBatch(std::move(single));
  } else {
    gang->push_back(std::move(req));
    if (gang->size() >= config_.pipeline_batch_max) FlushGang(gang);
  }
  return true;
}

void QueryServer::FlushGang(Batch* gang) {
  if (gang->empty()) return;
  EnqueueBatch(std::move(*gang));
  gang->clear();
}

void QueryServer::EnqueueBatch(Batch batch) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(batch));
  }
  queue_cv_.notify_one();
}

void QueryServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  IoLoop* home = conn->home;
  if (conn->bsock.has_pending_write()) {
    switch (conn->bsock.Flush()) {
      case BufferedSocket::IoResult::kWouldBlock:
        if (!conn->want_write) {
          conn->want_write = true;
          (void)home->loop.Modify(
              conn->fd, EventLoop::kWritable |
                            (conn->read_eof ? 0u : EventLoop::kReadable));
        }
        if (conn->write_timer == 0) {
          conn->write_timer =
              home->loop.AddTimer(kReplyWriteTimeoutMs, [this, conn] {
                conn->write_timer = 0;
                // Write-side slow-loris: the peer stopped draining its
                // socket; drop it rather than hold the reply bytes.
                if (!conn->closed) CloseConn(conn);
              });
        }
        return;
      case BufferedSocket::IoResult::kClosed:
      case BufferedSocket::IoResult::kError:
        CloseConn(conn);
        return;
      case BufferedSocket::IoResult::kProgress:
        break;  // drained
    }
  }
  // Queue drained.
  if (conn->want_write) {
    conn->want_write = false;
    (void)home->loop.Modify(
        conn->fd, conn->read_eof ? 0u : EventLoop::kReadable);
  }
  if (conn->write_timer != 0) {
    home->loop.CancelTimer(conn->write_timer);
    conn->write_timer = 0;
  }
  if (conn->read_eof && conn->admitted_open == 0) {
    CloseConn(conn);
    return;
  }
  if (home->shutting_down) CheckLoopDrained(home);
}

void QueryServer::StopReading(const std::shared_ptr<Conn>& conn) {
  if (conn->closed || conn->read_eof) return;
  conn->read_eof = true;
  if (conn->idle_timer != 0) {
    conn->home->loop.CancelTimer(conn->idle_timer);
    conn->idle_timer = 0;
  }
  if (conn->admitted_open == 0 && !conn->bsock.has_pending_write()) {
    CloseConn(conn);
    return;
  }
  (void)conn->home->loop.Modify(
      conn->fd, conn->want_write ? EventLoop::kWritable : 0u);
}

void QueryServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  IoLoop* home = conn->home;
  if (conn->idle_timer != 0) {
    home->loop.CancelTimer(conn->idle_timer);
    conn->idle_timer = 0;
  }
  if (conn->write_timer != 0) {
    home->loop.CancelTimer(conn->write_timer);
    conn->write_timer = 0;
  }
  home->loop.Remove(conn->fd);
  conn->bsock.socket().Close();
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  for (auto it = home->conns.begin(); it != home->conns.end(); ++it) {
    if (it->get() == conn.get()) {
      *it = std::move(home->conns.back());
      home->conns.pop_back();
      break;
    }
  }
  if (home->shutting_down && !home->stop_requested) CheckLoopDrained(home);
}

void QueryServer::DeliverReply(const std::shared_ptr<Conn>& conn,
                               ReplyFrame frame, bool admitted) {
  if (admitted && conn->admitted_open > 0) --conn->admitted_open;
  if (conn->closed) return;  // peer is gone; the reply has nowhere to go
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  // Head then tail, back to back: Flush gathers both into one writev. The
  // tail slice keeps its refcount pinned in the write queue until the
  // kernel has taken every byte, so a cache entry sharing it may be
  // evicted mid-flush without invalidating these bytes.
  conn->bsock.QueueWrite(std::move(frame.head));
  conn->bsock.QueueWrite(std::move(frame.tail));
  FlushConn(conn);
}

void QueryServer::EnqueueReply(const std::shared_ptr<Conn>& conn,
                               ReplyFrame frame, bool admitted) {
  EventLoop* loop = &conn->home->loop;
  if (loop->InLoopThread()) {
    DeliverReply(conn, std::move(frame), admitted);
  } else {
    loop->Post([this, conn, admitted,
                f = std::move(frame)]() mutable {
      DeliverReply(conn, std::move(f), admitted);
    });
  }
}

// --- worker path -------------------------------------------------------------

void QueryServer::WorkerLoop() {
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      batch = std::move(queue_.front());
      queue_.pop_front();
    }
    if (batch.size() == 1) {
      HandleRequest(&batch[0]);
    } else {
      HandleBatch(&batch);
    }
  }
}

bool QueryServer::TryServeFromCache(PendingRequest* req) {
  if (cache_ == nullptr || !CacheableRequest(req->header)) return false;
  // req->cache_epoch was captured together with the dataset snapshot (one
  // consistent pair, under dataset_mu_): a reply computed for this request
  // populates the cache under the same generation it was looked up
  // against, never a newer one.
  const uint8_t* body = req->payload.data() + req->body_offset;
  const size_t body_len = req->payload.size() - req->body_offset;
  ResponseCache::CachedReply hit;
  if (!cache_->Lookup(static_cast<uint16_t>(req->header.type),
                      req->cache_epoch, body, body_len, &hit)) {
    req->cache_populate = true;
    return false;
  }

  // Re-head in place under the requester's own request id: the frame is
  // [prefix | header | memoized tail], where only prefix + header (28
  // bytes) are built per hit and the tail ships as the cache entry's own
  // slice — zero payload copies. The frame CRC spans header then tail;
  // CRC-32C chains, so checksumming the two segments in order equals the
  // CRC of their (never materialized) concatenation, and the bytes on the
  // wire are identical to the execution that populated the entry.
  MessageHeader header;
  header.type = req->header.type;
  header.flags = protocol::kFlagReply | hit.flags;
  header.request_id = req->header.request_id;

  ReplyFrame frame;
  frame.head.reserve(protocol::kFramePrefixBytes +
                     protocol::kMessageHeaderBytes);
  WireWriter w(&frame.head);
  w.PutU32(protocol::kFrameMagic);
  w.PutU32(static_cast<uint32_t>(protocol::kMessageHeaderBytes +
                                 hit.tail.size()));
  w.PutU32(0);  // CRC placeholder, patched below
  EncodeMessageHeader(header, &w);
  const uint32_t crc =
      Crc32c(Crc32c(frame.head.data() + protocol::kFramePrefixBytes,
                    protocol::kMessageHeaderBytes),
             hit.tail.data(), hit.tail.size());
  std::memcpy(frame.head.data() + 8, &crc, sizeof(crc));
  frame.tail = std::move(hit.tail);

  // Counters and latency are finalized before the reply is enqueued,
  // matching the executed-reply path's read-your-own-write contract.
  RecordInlineReply(*req);

  EnqueueReply(req->conn, std::move(frame), /*admitted=*/false);
  return true;
}

bool QueryServer::Expired(const PendingRequest& req) const {
  if (req.deadline_ms == 0) return false;
  const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
  return elapsed >= std::chrono::milliseconds(req.deadline_ms);
}

void QueryServer::HandleRequest(PendingRequest* req) {
  // Counters and latency are finalized BEFORE the reply is enqueued, so
  // a client that has seen its reply always sees it reflected in a
  // subsequent stats request (no read-your-own-write race).
  if (Expired(*req)) {
    counters_.deadline_timeouts.fetch_add(1, std::memory_order_relaxed);
    const Status expired =
        Status::Unavailable("deadline expired before execution");
    FinishRequest(*req, expired);
    WriteErrorReply(*req, expired, 0);
  } else if (req->header.type == MessageType::kReload) {
    HandleReload(req);
  } else if (req->header.type == MessageType::kKnn) {
    protocol::KnnReply reply;
    const Status query_status = ExecuteKnn(*req, &reply);
    FinishRequest(*req, query_status);
    WriteReply(*req, query_status, 0,
               ReplyCacheable(query_status, /*degraded=*/false,
                              /*pages_skipped=*/0),
               [&](WireWriter* w) { protocol::EncodeKnnReply(reply, w); });
  } else {
    ExecuteAndReplyBoxLike(req);
  }
}

void QueryServer::ExecuteAndReplyBoxLike(PendingRequest* req) {
  protocol::QueryReply reply;
  const Status query_status = ExecuteBoxLike(*req, &reply);
  const uint32_t flags = reply.degraded ? protocol::kFlagDegraded : 0;
  FinishRequest(*req, query_status);
  WriteReply(
      *req, query_status, flags,
      ReplyCacheable(query_status, reply.degraded, reply.pages_skipped),
      [&](WireWriter* w) { protocol::EncodeQueryReply(reply, w); });
}

void QueryServer::HandleReload(PendingRequest* req) {
  WireReader r(req->payload.data() + req->body_offset,
               req->payload.size() - req->body_offset);
  protocol::ReloadRequest reload;
  Status decoded = DecodeReloadRequest(&r, &reload);
  if (decoded.ok()) decoded = r.ExpectEnd();
  if (!decoded.ok()) {
    FinishRequest(*req, decoded);
    WriteErrorReply(*req, decoded, 0);
    return;
  }
  auto result = Reload(reload.path);
  if (!result.ok()) {
    FinishRequest(*req, result.status());
    WriteErrorReply(*req, result.status(), 0);
    return;
  }
  FinishRequest(*req, Status::OK());
  WriteReply(*req, Status::OK(), 0, /*cacheable_reply=*/false,
             [&](WireWriter* w) { protocol::EncodeReloadReply(*result, w); });
}

void QueryServer::HandleBatch(Batch* batch) {
  // One gang = contiguous pipelined cache-miss box-like requests from one
  // connection. Each slot picks its access path with the planner's exact
  // cost rule, then every chosen path runs through a single
  // QueryEngine::ExecuteBatch call. Any slot that cannot take this fast
  // path — expired deadline, decode error, no feasible path, or a failed
  // execution — drops back to the exact single-request path, so replies
  // are indistinguishable from sequential execution.
  struct GangSlot {
    PendingRequest* req = nullptr;
    // The paths reference (not copy) their query geometry and RNG, so the
    // slot owns all of it for the duration of ExecuteBatch.
    std::unique_ptr<Rng> rng;
    std::unique_ptr<Box> box;
    std::unique_ptr<Polyhedron> poly;
    std::vector<std::unique_ptr<AccessPath>> paths;
    AccessPath* chosen = nullptr;
    uint64_t limit = 0;
  };

  std::vector<GangSlot> slots(batch->size());
  std::vector<AccessPath*> gang_paths;
  std::vector<size_t> gang_slots;  // slot index per gang_paths entry

  for (size_t i = 0; i < batch->size(); ++i) {
    PendingRequest* req = &(*batch)[i];
    GangSlot* slot = &slots[i];
    slot->req = req;
    if (Expired(*req)) {
      counters_.deadline_timeouts.fetch_add(1, std::memory_order_relaxed);
      const Status expired =
          Status::Unavailable("deadline expired before execution");
      FinishRequest(*req, expired);
      WriteErrorReply(*req, expired, 0);
      continue;
    }

    WireReader r(req->payload.data() + req->body_offset,
                 req->payload.size() - req->body_offset);
    const PointTableBinding& binding = req->dataset->binding();
    if (req->header.type == MessageType::kTableSample) {
      protocol::TableSampleRequest sample;
      if (!DecodeTableSampleRequest(&r, &sample).ok() ||
          !r.ExpectEnd().ok() || sample.lo.size() != req->dataset->dim()) {
        ExecuteAndReplyBoxLike(req);  // exact sequential error handling
        slot->req = nullptr;
        continue;
      }
      slot->box = std::make_unique<Box>(sample.lo, sample.hi);
      slot->rng = std::make_unique<Rng>(sample.seed);
      slot->paths.push_back(std::make_unique<TableSamplePath>(
          binding, *slot->box, sample.percent, sample.n, slot->rng.get()));
      slot->chosen = slot->paths.back().get();
    } else {
      protocol::BoxQueryRequest query;
      if (!DecodeBoxQueryRequest(&r, &query).ok() || !r.ExpectEnd().ok() ||
          query.lo.size() != req->dataset->dim()) {
        ExecuteAndReplyBoxLike(req);
        slot->req = nullptr;
        continue;
      }
      slot->limit = query.limit;
      slot->box = std::make_unique<Box>(query.lo, query.hi);
      slot->poly =
          std::make_unique<Polyhedron>(Polyhedron::FromBox(*slot->box));
      slot->paths.push_back(
          std::make_unique<FullScanPath>(binding, *slot->box));
      slot->paths.push_back(std::make_unique<KdTreePath>(
          binding, req->dataset->tree(), *slot->poly));
      // The planner's rule: cheapest feasible path by Estimate().Total(),
      // ties to the earlier registration (full-scan before kd-tree).
      double best_cost = 0.0;
      for (const auto& path : slot->paths) {
        if (!path->Validate().ok()) continue;
        const CostEstimate estimate = path->Estimate();
        if (!estimate.feasible) continue;
        const double cost = estimate.Total();
        if (slot->chosen == nullptr || cost < best_cost) {
          slot->chosen = path.get();
          best_cost = cost;
        }
      }
      if (slot->chosen == nullptr) {
        ExecuteAndReplyBoxLike(req);  // planner's no-feasible-path error
        slot->req = nullptr;
        continue;
      }
    }
    gang_paths.push_back(slot->chosen);
    gang_slots.push_back(i);
  }

  if (gang_paths.empty()) return;

  // Inline on this worker (num_threads=1): parallelism across requests
  // comes from the worker pool itself — the single MDS_QUERY_THREADS knob
  // keeps bounding total execution concurrency.
  QueryEngine::BatchOptions options;
  options.num_threads = 1;
  std::vector<QueryStats> stats;
  std::vector<Result<StorageQueryResult>> results =
      QueryEngine::ExecuteBatch(gang_paths, options, &stats);

  for (size_t g = 0; g < results.size(); ++g) {
    GangSlot* slot = &slots[gang_slots[g]];
    PendingRequest* req = slot->req;
    if (!results[g].ok()) {
      // Rare (corruption, fault injection): re-run through the planner so
      // the fallback-and-degrade policy — and the error text — match the
      // sequential path exactly.
      ExecuteAndReplyBoxLike(req);
      continue;
    }
    StorageQueryResult result = std::move(*results[g]);
    protocol::QueryReply reply;
    reply.chosen_path = slot->chosen->name();
    reply.row_count = result.objids.size();
    if (req->header.type == MessageType::kBoxQuery ||
        req->header.type == MessageType::kTableSample) {
      reply.objids = std::move(result.objids);
      if (slot->limit != 0 && reply.objids.size() > slot->limit) {
        // The reply-size cap: first `limit` matches in clustered row
        // order. (The scan itself is not truncated.)
        reply.objids.resize(slot->limit);
      }
    }
    reply.rows_scanned = stats[g].rows_scanned;
    reply.pages_fetched = stats[g].pages_fetched;
    reply.pages_read = stats[g].pages_read;
    reply.pages_skipped = stats[g].pages_skipped;
    reply.degraded = result.degraded;
    const uint32_t flags = reply.degraded ? protocol::kFlagDegraded : 0;
    FinishRequest(*req, Status::OK());
    WriteReply(*req, Status::OK(), flags,
               ReplyCacheable(Status::OK(), reply.degraded,
                              reply.pages_skipped),
               [&](WireWriter* w) { protocol::EncodeQueryReply(reply, w); });
  }
}

void QueryServer::FinishRequest(const PendingRequest& req,
                                const Status& status) {
  const size_t idx = TypeIndex(req.header.type);
  if (idx < protocol::kNumRequestTypes) {
    const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
    latency_us_[idx].Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    if (status.ok()) {
      counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.replies_error.fetch_add(1, std::memory_order_relaxed);
      counters_.type_errors[idx].fetch_add(1, std::memory_order_relaxed);
    }
  }
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    --in_flight_;
    drained = in_flight_ == 0;
  }
  if (drained) drained_cv_.notify_all();
}

void QueryServer::RecordInlineReply(const PendingRequest& req) {
  const size_t idx = TypeIndex(req.header.type);
  const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
  latency_us_[idx].Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count()));
  counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);
}

Status QueryServer::ExecuteBoxLike(const PendingRequest& req,
                                   protocol::QueryReply* out) {
  WireReader r(req.payload.data() + req.body_offset,
               req.payload.size() - req.body_offset);
  const PointTableBinding& binding = req.dataset->binding();

  RangeScanner::ScanOptions scan;
  scan.skip_corrupt_pages =
      (req.header.flags & protocol::kFlagSkipCorrupt) != 0;

  QueryStats stats;
  Result<StorageQueryResult> result =
      Status::Internal("query not executed");
  uint64_t limit = 0;

  if (req.header.type == MessageType::kTableSample) {
    protocol::TableSampleRequest sample;
    MDS_RETURN_NOT_OK(DecodeTableSampleRequest(&r, &sample));
    MDS_RETURN_NOT_OK(r.ExpectEnd());
    if (sample.lo.size() != req.dataset->dim()) {
      return Status::InvalidArgument("query dimension " +
                                     std::to_string(sample.lo.size()) +
                                     " != served dimension " +
                                     std::to_string(req.dataset->dim()));
    }
    Box box(sample.lo, sample.hi);
    Rng rng(sample.seed);
    TableSamplePath path(binding, box, sample.percent, sample.n, &rng);
    result = ExecuteAccessPath(&path, scan, &stats);
    out->chosen_path = path.name();
  } else {
    protocol::BoxQueryRequest query;
    MDS_RETURN_NOT_OK(DecodeBoxQueryRequest(&r, &query));
    MDS_RETURN_NOT_OK(r.ExpectEnd());
    if (query.lo.size() != req.dataset->dim()) {
      return Status::InvalidArgument("query dimension " +
                                     std::to_string(query.lo.size()) +
                                     " != served dimension " +
                                     std::to_string(req.dataset->dim()));
    }
    limit = query.limit;
    Box box(query.lo, query.hi);
    const Polyhedron poly = Polyhedron::FromBox(box);

    QueryPlanner planner;
    planner.AddPath(std::make_unique<FullScanPath>(binding, box))
        .AddPath(std::make_unique<KdTreePath>(binding, req.dataset->tree(),
                                              poly));

    QueryPlanner::ExecuteOptions options;
    options.scan = scan;
    // Protocol planner hints map onto the planner's path restriction.
    if (req.header.flags & protocol::kFlagHintFullScan) {
      options.required_path = "full-scan";
    } else if (req.header.flags & protocol::kFlagHintIndex) {
      options.required_path = "kd-tree";
    }
    result = planner.Execute(options, &stats, &out->chosen_path);
  }

  if (!result.ok()) return result.status();

  out->row_count = result->objids.size();
  if (req.header.type == MessageType::kBoxQuery ||
      req.header.type == MessageType::kTableSample) {
    out->objids = std::move(result->objids);
    if (limit != 0 && out->objids.size() > limit) {
      // The reply-size cap: first `limit` matches in clustered row order.
      // (The scan itself is not truncated; pages_fetched is unaffected.)
      out->objids.resize(limit);
    }
  }
  out->rows_scanned = stats.rows_scanned;
  out->pages_fetched = stats.pages_fetched;
  out->pages_read = stats.pages_read;
  out->pages_skipped = stats.pages_skipped;
  out->degraded = result->degraded;
  return Status::OK();
}

Status QueryServer::ExecuteKnn(const PendingRequest& req,
                               protocol::KnnReply* out) {
  WireReader r(req.payload.data() + req.body_offset,
               req.payload.size() - req.body_offset);
  protocol::KnnRequest knn;
  MDS_RETURN_NOT_OK(DecodeKnnRequest(&r, &knn));
  MDS_RETURN_NOT_OK(r.ExpectEnd());
  if (knn.point.size() != req.dataset->dim()) {
    return Status::InvalidArgument("query dimension " +
                                   std::to_string(knn.point.size()) +
                                   " != served dimension " +
                                   std::to_string(req.dataset->dim()));
  }
  if (knn.k > kMaxKnnK) {
    return Status::InvalidArgument("k exceeds cap " +
                                   std::to_string(kMaxKnnK));
  }
  // k beyond the stored row count used to clamp silently; an answer with
  // fewer than k neighbors is indistinguishable from data loss to the
  // caller, so it is now a boundary error.
  if (knn.k > req.dataset->num_rows()) {
    return Status::InvalidArgument(
        "k " + std::to_string(knn.k) + " exceeds served rows " +
        std::to_string(req.dataset->num_rows()));
  }
  KdKnnSearcher searcher(&req.dataset->tree());
  std::vector<Neighbor> neighbors =
      searcher.BoundaryGrow(knn.point.data(), knn.k);
  out->neighbors.reserve(neighbors.size());
  for (const Neighbor& n : neighbors) {
    out->neighbors.push_back(protocol::WireNeighbor{
        static_cast<int64_t>(n.id), n.squared_distance});
  }
  return Status::OK();
}

void QueryServer::HandleHealth(const PendingRequest& req) {
  protocol::HealthReply reply;
  reply.draining = state_.load() != State::kRunning ? 1 : 0;
  reply.served_rows = req.dataset->num_rows();
  reply.dim = static_cast<uint32_t>(req.dataset->dim());
  RecordInlineReply(req);
  const uint32_t flags = reply.draining ? protocol::kFlagDraining : 0;
  WriteReply(req, Status::OK(), flags, /*cacheable_reply=*/false,
             [&](WireWriter* w) { protocol::EncodeHealthReply(reply, w); });
}

void QueryServer::HandleStats(const PendingRequest& req) {
  RecordInlineReply(req);
  const protocol::ServerStatsSnapshot snapshot = Stats();
  WriteReply(req, Status::OK(), 0, /*cacheable_reply=*/false,
             [&](WireWriter* w) { protocol::EncodeServerStats(snapshot, w); });
}

template <typename EncodeBody>
void QueryServer::WriteReply(const PendingRequest& req, const Status& status,
                             uint32_t extra_flags, bool cacheable_reply,
                             EncodeBody&& encode_body) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  MessageHeader header;
  header.type = req.header.type;
  header.flags = protocol::kFlagReply | extra_flags;
  header.request_id = req.header.request_id;
  EncodeMessageHeader(header, &w);
  protocol::EncodeStatus(status, &w);
  if (status.ok()) {
    encode_body(&w);
  }

  // Move the encoded tail (everything after the message header) into a
  // slab slice: the one post-encode payload copy on the miss path. The
  // slice is then shared by reference — the cache entry below and the
  // socket write queue pin the same bytes.
  const size_t tail_len = payload.size() - protocol::kMessageHeaderBytes;
  SlabPool::Slice tail = SlabPool::Global().Allocate(tail_len);
  if (tail) {
    std::memcpy(tail.data(), payload.data() + protocol::kMessageHeaderBytes,
                tail_len);
    counters_.reply_tail_copies.fetch_add(1, std::memory_order_relaxed);
  }

  // Populate after the reply is finalized and before it is enqueued: a
  // subsequent hit on any connection replays exactly these bytes (minus
  // the request id). Only requests the I/O-thread probe tagged get here
  // with cache_populate set, so uncacheable flags never leak entries in.
  if (cache_ != nullptr && req.cache_populate && cacheable_reply) {
    cache_->Insert(static_cast<uint16_t>(req.header.type), req.cache_epoch,
                   req.payload.data() + req.body_offset,
                   req.payload.size() - req.body_offset, extra_flags, tail);
  }

  ReplyFrame frame;
  frame.head.reserve(protocol::kFramePrefixBytes +
                     protocol::kMessageHeaderBytes);
  WireWriter hw(&frame.head);
  hw.PutU32(protocol::kFrameMagic);
  hw.PutU32(static_cast<uint32_t>(payload.size()));
  hw.PutU32(Crc32c(payload.data(), payload.size()));
  hw.PutRaw(payload.data(), protocol::kMessageHeaderBytes);
  frame.tail = std::move(tail);
  EnqueueReply(req.conn, std::move(frame), req.admitted);
}

void QueryServer::WriteErrorReply(const PendingRequest& req,
                                  const Status& status,
                                  uint32_t extra_flags) {
  WriteReply(req, status, extra_flags, /*cacheable_reply=*/false,
             [](WireWriter*) {});
}

protocol::ServerStatsSnapshot QueryServer::Stats() const {
  // One consistent (generation, baseline) pair: Reload re-baselines
  // pool_at_start_ when it swaps the dataset, under the same mutex.
  std::shared_ptr<const ServedDataset> dataset;
  CounterSnapshot pool_at_start;
  {
    std::lock_guard<std::mutex> lock(dataset_mu_);
    dataset = dataset_;
    pool_at_start = pool_at_start_;
  }

  protocol::ServerStatsSnapshot s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  s.accept_errors = counters_.accept_errors.load(std::memory_order_relaxed);
  s.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  s.requests_total = counters_.requests_total.load(std::memory_order_relaxed);
  s.replies_ok = counters_.replies_ok.load(std::memory_order_relaxed);
  s.replies_error = counters_.replies_error.load(std::memory_order_relaxed);
  s.rejected_overload =
      counters_.rejected_overload.load(std::memory_order_relaxed);
  s.rejected_draining =
      counters_.rejected_draining.load(std::memory_order_relaxed);
  s.deadline_timeouts =
      counters_.deadline_timeouts.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.in_flight_peak = counters_.in_flight_peak.load(std::memory_order_relaxed);

  const SlabPool::StatsSnapshot slab = SlabPool::Global().Stats();
  s.slab_allocations = slab.allocations;
  s.slab_recycles = slab.recycles;
  s.slab_bytes_in_use = slab.bytes_in_use;
  s.reply_tail_copies =
      counters_.reply_tail_copies.load(std::memory_order_relaxed);

  const CounterSnapshot::Delta delta =
      dataset->pool()->Delta(pool_at_start);
  s.pool_logical_reads = delta.logical_reads;
  s.pool_physical_reads = delta.physical_reads;

  if (cache_ != nullptr) {
    const ResponseCache::StatsSnapshot c = cache_->Stats();
    s.cache_hits = c.hits;
    s.cache_misses = c.misses;
    s.cache_insertions = c.insertions;
    s.cache_evictions = c.evictions;
    s.cache_bytes = c.bytes;
    s.cache_entries = c.entries;
  }
  s.dataset_epoch = dataset->epoch();

  for (size_t i = 0; i < protocol::kNumRequestTypes; ++i) {
    const Histogram::Snapshot h = latency_us_[i].TakeSnapshot();
    protocol::RequestTypeStats& t = s.per_type[i];
    t.count = h.count;
    t.errors = counters_.type_errors[i].load(std::memory_order_relaxed);
    t.p50_us = h.ValueAtPercentile(50);
    t.p95_us = h.ValueAtPercentile(95);
    t.p99_us = h.ValueAtPercentile(99);
    t.max_us = h.ValueAtPercentile(100);
    t.mean_us = h.Mean();
  }
  return s;
}

// --- drain / shutdown --------------------------------------------------------

void QueryServer::RequestDrain() {
  State expected = State::kRunning;
  if (state_.compare_exchange_strong(expected, State::kDraining)) {
    // Wakes loop 0 through the (registered) listener fd; the accept
    // handler sees the drained state and deregisters it.
    listener_.Shutdown();
  }
}

void QueryServer::ShutdownLoopTask(IoLoop* io) {
  io->shutting_down = true;
  if (io == loops_[0].get() && listener_registered_) {
    io->loop.Remove(listener_.fd());
    listener_registered_ = false;
  }
  // Close everything with an empty write queue; give the rest a flush.
  std::vector<std::shared_ptr<Conn>> conns = io->conns;
  for (auto& conn : conns) {
    if (!conn->bsock.has_pending_write()) {
      CloseConn(conn);
    } else {
      FlushConn(conn);
    }
  }
  CheckLoopDrained(io);
}

void QueryServer::CheckLoopDrained(IoLoop* io) {
  if (!io->shutting_down || io->stop_requested) return;
  bool pending = false;
  for (const auto& conn : io->conns) {
    if (conn->bsock.has_pending_write()) {
      pending = true;
      break;
    }
  }
  if (!pending) {
    io->stop_requested = true;
    if (io->shutdown_timer != 0) {
      io->loop.CancelTimer(io->shutdown_timer);
      io->shutdown_timer = 0;
    }
    std::vector<std::shared_ptr<Conn>> conns = io->conns;
    for (auto& conn : conns) CloseConn(conn);
    io->loop.Stop();
  } else if (io->shutdown_timer == 0) {
    // Bounded grace for peers that stopped reading: after it, their
    // replies are forfeit and the loop stops regardless.
    io->shutdown_timer = io->loop.AddTimer(kDrainFlushGraceMs, [this, io] {
      io->shutdown_timer = 0;
      io->stop_requested = true;
      std::vector<std::shared_ptr<Conn>> conns = io->conns;
      for (auto& conn : conns) CloseConn(conn);
      io->loop.Stop();
    });
  }
}

void QueryServer::Shutdown() {
  if (!started_) return;
  RequestDrain();

  // Complete every admitted request before tearing anything down — the
  // graceful-drain contract.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  if (worker_runner_.joinable()) worker_runner_.join();

  // Workers are joined, so every reply has been posted; loop post queues
  // are FIFO, so the shutdown task runs after the last delivery. It
  // flushes stragglers (bounded) and stops the loop.
  for (auto& io : loops_) {
    IoLoop* p = io.get();
    p->loop.Post([this, p] { ShutdownLoopTask(p); });
  }
  for (auto& io : loops_) {
    if (io->thread.joinable()) io->thread.join();
  }
  loops_.clear();
  listener_ = TcpListener();  // release the listen fd

  state_.store(State::kStopped);
  started_ = false;
}

}  // namespace mds
