#include "server/server.h"

#include <algorithm>

#include "common/rng.h"
#include "core/knn.h"
#include "core/query_planner.h"

namespace mds {

namespace {

using protocol::MessageHeader;
using protocol::MessageType;
using protocol::TypeIndex;

/// Bound on any single reply write: a client that stops draining its
/// socket cannot wedge a worker (the write-side slow-loris).
constexpr uint32_t kReplyWriteTimeoutMs = 30000;

/// Resource cap on one kNN request (the result is k * 16 bytes).
constexpr uint32_t kMaxKnnK = 1u << 16;

/// Flags that make a request uncacheable: skip_corrupt can produce a
/// degraded answer tied to a transient fault, and planner-pinning hints
/// are diagnostics whose replies (chosen_path, I/O counters) must reflect
/// a real execution.
constexpr uint32_t kUncacheableFlags = protocol::kFlagSkipCorrupt |
                                       protocol::kFlagHintFullScan |
                                       protocol::kFlagHintIndex;

/// True for request types whose reply is a pure function of (dataset
/// epoch, request body): point counts, box queries, kNN and seeded
/// TABLESAMPLE (the RNG seed travels in the body). Health and stats are
/// answered inline and change between calls.
bool CacheableRequest(const protocol::MessageHeader& header) {
  if ((header.flags & kUncacheableFlags) != 0) return false;
  switch (header.type) {
    case MessageType::kPointCount:
    case MessageType::kBoxQuery:
    case MessageType::kKnn:
    case MessageType::kTableSample:
      return true;
    default:
      return false;
  }
}

void RelaxedMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

QueryServer::QueryServer(const ServedDataset* dataset,
                         const ServerConfig& config)
    : dataset_(dataset), config_(config) {
  if (config_.max_in_flight == 0) config_.max_in_flight = 1;
  if (config_.cache_bytes != 0) {
    cache_ = std::make_unique<ResponseCache>(config_.cache_bytes);
  }
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto listener = TcpListener::Listen(config_.port);
  if (!listener.ok()) {
    return AnnotateStatus(listener.status(), "QueryServer::Start");
  }
  listener_ = std::move(*listener);
  port_ = listener_.port();
  pool_at_start_ = dataset_->pool()->Snapshot();

  started_ = true;
  state_.store(State::kRunning);
  workers_ = std::make_unique<TaskPool>(config_.num_workers);
  worker_runner_ = std::thread([this] {
    workers_->Run([this](unsigned) { WorkerLoop(); });
  });
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::AcceptLoop() {
  while (state_.load() == State::kRunning) {
    ReapFinishedReaders(/*join_all=*/false);
    // Short accept deadline: the loop re-checks state a few times a second
    // even if the listener shutdown race is lost.
    auto accepted = listener_.Accept(IoDeadline::After(250));
    if (!accepted.ok()) {
      if (accepted.status().IsTransient()) continue;  // deadline tick
      break;  // listener shut down or broken
    }
    Socket sock = std::move(*accepted);
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    if (open_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Connection-level shed: no protocol state yet, so close is the only
      // honest answer (request-level shedding replies kUnavailable).
      counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      continue;  // sock closes on scope exit
    }
    (void)sock.SetNoDelay();
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(sock);
    open_connections_.fetch_add(1, std::memory_order_relaxed);

    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.push_back(ReaderThread{
        std::thread([this, conn, done] {
          ReaderLoop(conn);
          open_connections_.fetch_sub(1, std::memory_order_relaxed);
          counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
          done->store(true);
        }),
        done});
  }
}

void QueryServer::ReapFinishedReaders(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = readers_.begin(); it != readers_.end();) {
    if (join_all || it->done->load()) {
      it->thread.join();
      it = readers_.erase(it);
    } else {
      ++it;
    }
  }
  if (join_all) {
    conns_.clear();
  }
}

void QueryServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    const IoDeadline deadline = config_.idle_timeout_ms == 0
                                    ? IoDeadline::Infinite()
                                    : IoDeadline::After(config_.idle_timeout_ms);
    PendingRequest req;
    req.conn = conn;
    uint64_t frame_bytes = 0;
    Status read = protocol::ReadFrame(&conn->sock, deadline, &req.payload,
                                      &frame_bytes);
    counters_.bytes_in.fetch_add(frame_bytes, std::memory_order_relaxed);
    if (!read.ok()) {
      // NotFound = clean close on a frame boundary; kUnavailable = idle /
      // slow-loris timeout or mid-frame close; anything else is a protocol
      // violation (bad magic, oversized length, bad CRC) or socket error.
      if (read.code() != StatusCode::kNotFound &&
          read.code() != StatusCode::kUnavailable &&
          read.code() != StatusCode::kIOError) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }

    req.arrival = std::chrono::steady_clock::now();
    WireReader r(req.payload);
    if (!DecodeMessageHeader(&r, &req.header).ok()) {
      // Unknown version or truncated header: nothing trustworthy to echo —
      // close the connection (the documented contract for version skew).
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    counters_.requests_total.fetch_add(1, std::memory_order_relaxed);

    // All request bodies begin with the deadline prefix.
    req.deadline_ms = r.GetU32();
    req.body_offset = req.payload.size() - r.remaining();
    if (!r.ok()) {
      (void)WriteErrorReply(
          req, Status::InvalidArgument("request body truncated"), 0);
      continue;
    }
    if (req.deadline_ms == 0) req.deadline_ms = config_.default_deadline_ms;

    switch (req.header.type) {
      case MessageType::kHealth:
        HandleHealth(req);
        continue;
      case MessageType::kStats:
        HandleStats(req);
        continue;
      case MessageType::kPointCount:
      case MessageType::kBoxQuery:
      case MessageType::kKnn:
      case MessageType::kTableSample:
        break;
      default:
        (void)WriteErrorReply(
            req,
            Status::Unimplemented("unknown request type " +
                                  std::to_string(static_cast<unsigned>(
                                      req.header.type))),
            0);
        continue;
    }

    // Response-cache fast path, on this reader thread: a hit is answered
    // immediately and never touches admission control, the queue or the
    // deadline machinery. A miss tags the request to populate the cache
    // once its reply is finalized.
    if (TryServeFromCache(&req)) continue;

    // Admission control: reject rather than buffer beyond the cap.
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (state_.load() != State::kRunning) {
        lock.unlock();
        counters_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
        (void)WriteErrorReply(
            req, Status::Unavailable("server draining; retry elsewhere"),
            protocol::kFlagDraining);
        continue;
      }
      if (in_flight_ >= config_.max_in_flight) {
        lock.unlock();
        counters_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
        (void)WriteErrorReply(
            req, Status::Unavailable("server overloaded; retry with backoff"),
            0);
        continue;
      }
      ++in_flight_;
      RelaxedMax(&counters_.in_flight_peak, in_flight_);
      queue_.push_back(std::move(req));
    }
    queue_cv_.notify_one();
  }
}

void QueryServer::WorkerLoop() {
  for (;;) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    HandleRequest(&req);
  }
}

bool QueryServer::TryServeFromCache(PendingRequest* req) {
  if (cache_ == nullptr || !CacheableRequest(req->header)) return false;
  // The epoch is observed once, before the probe: a reply computed for
  // this request populates the cache under the same generation it was
  // looked up against, never a newer one.
  req->cache_epoch = dataset_->epoch();
  const uint8_t* body = req->payload.data() + req->body_offset;
  const size_t body_len = req->payload.size() - req->body_offset;
  ResponseCache::CachedReply hit;
  if (!cache_->Lookup(static_cast<uint16_t>(req->header.type),
                      req->cache_epoch, body, body_len, &hit)) {
    req->cache_populate = true;
    return false;
  }

  // Rebuild the frame under the requester's own request id; everything
  // after the header is the memoized bytes, so the reply is byte-identical
  // to the execution that populated the entry.
  std::vector<uint8_t> payload;
  payload.reserve(protocol::kMessageHeaderBytes + hit.tail.size());
  WireWriter w(&payload);
  MessageHeader header;
  header.type = req->header.type;
  header.flags = protocol::kFlagReply | hit.flags;
  header.request_id = req->header.request_id;
  EncodeMessageHeader(header, &w);
  w.PutRaw(hit.tail.data(), hit.tail.size());

  // Counters and latency are finalized before the wire write, matching
  // the executed-reply path's read-your-own-write contract.
  const size_t idx = TypeIndex(req->header.type);
  const auto elapsed = std::chrono::steady_clock::now() - req->arrival;
  latency_us_[idx].Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
  counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);

  uint64_t bytes = 0;
  Status written;
  {
    std::lock_guard<std::mutex> lock(req->conn->write_mu);
    written = protocol::WriteFrame(&req->conn->sock,
                                   IoDeadline::After(kReplyWriteTimeoutMs),
                                   payload, &bytes);
  }
  counters_.bytes_out.fetch_add(bytes, std::memory_order_relaxed);
  if (!written.ok()) req->conn->sock.ShutdownBoth();
  return true;
}

bool QueryServer::Expired(const PendingRequest& req) const {
  if (req.deadline_ms == 0) return false;
  const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
  return elapsed >= std::chrono::milliseconds(req.deadline_ms);
}

void QueryServer::HandleRequest(PendingRequest* req) {
  // Counters and latency are finalized BEFORE the reply hits the wire, so
  // a client that has seen its reply always sees it reflected in a
  // subsequent stats request (no read-your-own-write race).
  if (Expired(*req)) {
    counters_.deadline_timeouts.fetch_add(1, std::memory_order_relaxed);
    const Status expired =
        Status::Unavailable("deadline expired before execution");
    FinishRequest(*req, expired);
    (void)WriteErrorReply(*req, expired, 0);
  } else if (req->header.type == MessageType::kKnn) {
    protocol::KnnReply reply;
    const Status query_status = ExecuteKnn(*req, &reply);
    FinishRequest(*req, query_status);
    (void)WriteReply(*req, query_status, 0,
                     ReplyCacheable(query_status, /*degraded=*/false,
                                    /*pages_skipped=*/0),
                     [&](WireWriter* w) { protocol::EncodeKnnReply(reply, w); });
  } else {
    protocol::QueryReply reply;
    const Status query_status = ExecuteBoxLike(*req, &reply);
    const uint32_t flags = reply.degraded ? protocol::kFlagDegraded : 0;
    FinishRequest(*req, query_status);
    (void)WriteReply(
        *req, query_status, flags,
        ReplyCacheable(query_status, reply.degraded, reply.pages_skipped),
        [&](WireWriter* w) { protocol::EncodeQueryReply(reply, w); });
  }
}

void QueryServer::FinishRequest(const PendingRequest& req,
                                const Status& status) {
  const size_t idx = TypeIndex(req.header.type);
  if (idx < protocol::kNumRequestTypes) {
    const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
    latency_us_[idx].Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    if (status.ok()) {
      counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.replies_error.fetch_add(1, std::memory_order_relaxed);
      counters_.type_errors[idx].fetch_add(1, std::memory_order_relaxed);
    }
  }
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    --in_flight_;
    drained = in_flight_ == 0;
  }
  if (drained) drained_cv_.notify_all();
}

Status QueryServer::ExecuteBoxLike(const PendingRequest& req,
                                   protocol::QueryReply* out) {
  WireReader r(req.payload.data() + req.body_offset,
               req.payload.size() - req.body_offset);
  const PointTableBinding& binding = dataset_->binding();

  RangeScanner::ScanOptions scan;
  scan.skip_corrupt_pages =
      (req.header.flags & protocol::kFlagSkipCorrupt) != 0;

  QueryStats stats;
  Result<StorageQueryResult> result =
      Status::Internal("query not executed");
  uint64_t limit = 0;

  if (req.header.type == MessageType::kTableSample) {
    protocol::TableSampleRequest sample;
    MDS_RETURN_NOT_OK(DecodeTableSampleRequest(&r, &sample));
    MDS_RETURN_NOT_OK(r.ExpectEnd());
    if (sample.lo.size() != dataset_->dim()) {
      return Status::InvalidArgument("query dimension " +
                                     std::to_string(sample.lo.size()) +
                                     " != served dimension " +
                                     std::to_string(dataset_->dim()));
    }
    Box box(sample.lo, sample.hi);
    Rng rng(sample.seed);
    TableSamplePath path(binding, box, sample.percent, sample.n, &rng);
    result = ExecuteAccessPath(&path, scan, &stats);
    out->chosen_path = path.name();
  } else {
    protocol::BoxQueryRequest query;
    MDS_RETURN_NOT_OK(DecodeBoxQueryRequest(&r, &query));
    MDS_RETURN_NOT_OK(r.ExpectEnd());
    if (query.lo.size() != dataset_->dim()) {
      return Status::InvalidArgument("query dimension " +
                                     std::to_string(query.lo.size()) +
                                     " != served dimension " +
                                     std::to_string(dataset_->dim()));
    }
    limit = query.limit;
    Box box(query.lo, query.hi);
    const Polyhedron poly = Polyhedron::FromBox(box);

    QueryPlanner planner;
    planner.AddPath(std::make_unique<FullScanPath>(binding, box))
        .AddPath(
            std::make_unique<KdTreePath>(binding, dataset_->tree(), poly));

    QueryPlanner::ExecuteOptions options;
    options.scan = scan;
    // Protocol planner hints map onto the planner's path restriction.
    if (req.header.flags & protocol::kFlagHintFullScan) {
      options.required_path = "full-scan";
    } else if (req.header.flags & protocol::kFlagHintIndex) {
      options.required_path = "kd-tree";
    }
    result = planner.Execute(options, &stats, &out->chosen_path);
  }

  if (!result.ok()) return result.status();

  out->row_count = result->objids.size();
  if (req.header.type == MessageType::kBoxQuery ||
      req.header.type == MessageType::kTableSample) {
    out->objids = std::move(result->objids);
    if (limit != 0 && out->objids.size() > limit) {
      // The reply-size cap: first `limit` matches in clustered row order.
      // (The scan itself is not truncated; pages_fetched is unaffected.)
      out->objids.resize(limit);
    }
  }
  out->rows_scanned = stats.rows_scanned;
  out->pages_fetched = stats.pages_fetched;
  out->pages_read = stats.pages_read;
  out->pages_skipped = stats.pages_skipped;
  out->degraded = result->degraded;
  return Status::OK();
}

Status QueryServer::ExecuteKnn(const PendingRequest& req,
                               protocol::KnnReply* out) {
  WireReader r(req.payload.data() + req.body_offset,
               req.payload.size() - req.body_offset);
  protocol::KnnRequest knn;
  MDS_RETURN_NOT_OK(DecodeKnnRequest(&r, &knn));
  MDS_RETURN_NOT_OK(r.ExpectEnd());
  if (knn.point.size() != dataset_->dim()) {
    return Status::InvalidArgument("query dimension " +
                                   std::to_string(knn.point.size()) +
                                   " != served dimension " +
                                   std::to_string(dataset_->dim()));
  }
  if (knn.k > kMaxKnnK) {
    return Status::InvalidArgument("k exceeds cap " +
                                   std::to_string(kMaxKnnK));
  }
  // k beyond the stored row count used to clamp silently; an answer with
  // fewer than k neighbors is indistinguishable from data loss to the
  // caller, so it is now a boundary error.
  if (knn.k > dataset_->num_rows()) {
    return Status::InvalidArgument(
        "k " + std::to_string(knn.k) + " exceeds served rows " +
        std::to_string(dataset_->num_rows()));
  }
  KdKnnSearcher searcher(&dataset_->tree());
  std::vector<Neighbor> neighbors =
      searcher.BoundaryGrow(knn.point.data(), knn.k);
  out->neighbors.reserve(neighbors.size());
  for (const Neighbor& n : neighbors) {
    out->neighbors.push_back(protocol::WireNeighbor{
        static_cast<int64_t>(n.id), n.squared_distance});
  }
  return Status::OK();
}

void QueryServer::HandleHealth(const PendingRequest& req) {
  protocol::HealthReply reply;
  reply.draining = state_.load() != State::kRunning ? 1 : 0;
  reply.served_rows = dataset_->num_rows();
  reply.dim = static_cast<uint32_t>(dataset_->dim());
  const size_t idx = TypeIndex(req.header.type);
  const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
  latency_us_[idx].Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
  counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);
  const uint32_t flags = reply.draining ? protocol::kFlagDraining : 0;
  (void)WriteReply(req, Status::OK(), flags, /*cacheable_reply=*/false,
                   [&](WireWriter* w) {
                     protocol::EncodeHealthReply(reply, w);
                   });
}

void QueryServer::HandleStats(const PendingRequest& req) {
  const size_t idx = TypeIndex(req.header.type);
  const auto elapsed = std::chrono::steady_clock::now() - req.arrival;
  latency_us_[idx].Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
  counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);
  const protocol::ServerStatsSnapshot snapshot = Stats();
  (void)WriteReply(req, Status::OK(), 0, /*cacheable_reply=*/false,
                   [&](WireWriter* w) {
                     protocol::EncodeServerStats(snapshot, w);
                   });
}

template <typename EncodeBody>
Status QueryServer::WriteReply(const PendingRequest& req, const Status& status,
                               uint32_t extra_flags, bool cacheable_reply,
                               EncodeBody&& encode_body) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  MessageHeader header;
  header.type = req.header.type;
  header.flags = protocol::kFlagReply | extra_flags;
  header.request_id = req.header.request_id;
  EncodeMessageHeader(header, &w);
  protocol::EncodeStatus(status, &w);
  if (status.ok()) {
    encode_body(&w);
  }

  // Populate after the reply is finalized and before it hits the wire: a
  // subsequent hit on any connection replays exactly these bytes (minus
  // the request id). Only requests the reader probe tagged get here with
  // cache_populate set, so uncacheable flags never leak entries in.
  if (cache_ != nullptr && req.cache_populate && cacheable_reply) {
    cache_->Insert(static_cast<uint16_t>(req.header.type), req.cache_epoch,
                   req.payload.data() + req.body_offset,
                   req.payload.size() - req.body_offset, extra_flags,
                   payload.data() + protocol::kMessageHeaderBytes,
                   payload.size() - protocol::kMessageHeaderBytes);
  }

  uint64_t bytes = 0;
  Status written;
  {
    std::lock_guard<std::mutex> lock(req.conn->write_mu);
    written = protocol::WriteFrame(&req.conn->sock,
                                   IoDeadline::After(kReplyWriteTimeoutMs),
                                   payload, &bytes);
  }
  counters_.bytes_out.fetch_add(bytes, std::memory_order_relaxed);
  if (!written.ok()) {
    // The reply cannot be delivered; drop the connection so its reader
    // stops feeding us work for a dead peer.
    req.conn->sock.ShutdownBoth();
  }
  return written;
}

Status QueryServer::WriteErrorReply(const PendingRequest& req,
                                    const Status& status,
                                    uint32_t extra_flags) {
  return WriteReply(req, status, extra_flags, /*cacheable_reply=*/false,
                    [](WireWriter*) {});
}

protocol::ServerStatsSnapshot QueryServer::Stats() const {
  protocol::ServerStatsSnapshot s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  s.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  s.requests_total = counters_.requests_total.load(std::memory_order_relaxed);
  s.replies_ok = counters_.replies_ok.load(std::memory_order_relaxed);
  s.replies_error = counters_.replies_error.load(std::memory_order_relaxed);
  s.rejected_overload =
      counters_.rejected_overload.load(std::memory_order_relaxed);
  s.rejected_draining =
      counters_.rejected_draining.load(std::memory_order_relaxed);
  s.deadline_timeouts =
      counters_.deadline_timeouts.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.in_flight_peak = counters_.in_flight_peak.load(std::memory_order_relaxed);

  const CounterSnapshot::Delta delta =
      dataset_->pool()->Delta(pool_at_start_);
  s.pool_logical_reads = delta.logical_reads;
  s.pool_physical_reads = delta.physical_reads;

  if (cache_ != nullptr) {
    const ResponseCache::StatsSnapshot c = cache_->Stats();
    s.cache_hits = c.hits;
    s.cache_misses = c.misses;
    s.cache_insertions = c.insertions;
    s.cache_evictions = c.evictions;
    s.cache_bytes = c.bytes;
    s.cache_entries = c.entries;
  }
  s.dataset_epoch = dataset_->epoch();

  for (size_t i = 0; i < protocol::kNumRequestTypes; ++i) {
    const Histogram::Snapshot h = latency_us_[i].TakeSnapshot();
    protocol::RequestTypeStats& t = s.per_type[i];
    t.count = h.count;
    t.errors = counters_.type_errors[i].load(std::memory_order_relaxed);
    t.p50_us = h.ValueAtPercentile(50);
    t.p95_us = h.ValueAtPercentile(95);
    t.p99_us = h.ValueAtPercentile(99);
    t.max_us = h.ValueAtPercentile(100);
    t.mean_us = h.Mean();
  }
  return s;
}

void QueryServer::RequestDrain() {
  State expected = State::kRunning;
  if (state_.compare_exchange_strong(expected, State::kDraining)) {
    listener_.Shutdown();
  }
}

void QueryServer::Shutdown() {
  if (!started_) return;
  RequestDrain();

  // Complete every admitted request before tearing anything down — the
  // graceful-drain contract.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  if (worker_runner_.joinable()) worker_runner_.join();
  if (acceptor_.joinable()) acceptor_.join();

  // Wake readers blocked on idle connections, then join them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& weak : conns_) {
      if (auto conn = weak.lock()) conn->sock.ShutdownBoth();
    }
  }
  ReapFinishedReaders(/*join_all=*/true);
  state_.store(State::kStopped);
  started_ = false;
}

}  // namespace mds
