#include "server/protocol.h"

#include <cmath>

#include "common/crc32c.h"

namespace mds {
namespace protocol {

namespace {

/// Degenerate-box rejection at the wire boundary: a NaN bound poisons
/// every containment test (the engine would return an empty result with a
/// success status — a silent lie) and an inverted axis describes no volume
/// the caller could have meant. Both are InvalidArgument here, before any
/// engine code runs.
Status ValidateBoxBounds(const std::vector<double>& lo,
                         const std::vector<double>& hi) {
  if (lo.size() != hi.size()) {
    return Status::InvalidArgument("protocol: box lo/hi dimension mismatch");
  }
  for (size_t j = 0; j < lo.size(); ++j) {
    if (std::isnan(lo[j]) || std::isnan(hi[j])) {
      return Status::InvalidArgument("protocol: box bound is NaN on axis " +
                                     std::to_string(j));
    }
    if (lo[j] > hi[j]) {
      return Status::InvalidArgument(
          "protocol: box is inverted (lo > hi) on axis " + std::to_string(j));
    }
  }
  return Status::OK();
}

}  // namespace

void EncodeCoords(const std::vector<double>& v, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (double x : v) w->PutF64(x);
}

Status DecodeCoords(WireReader* r, std::vector<double>* v) {
  const uint32_t dim = r->GetU32();
  if (!r->ok()) return r->status();
  if (dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("protocol: dimension out of range");
  }
  v->resize(dim);
  for (uint32_t j = 0; j < dim; ++j) (*v)[j] = r->GetF64();
  return r->status();
}

size_t TypeIndex(MessageType type) {
  const uint16_t v = static_cast<uint16_t>(type);
  if (v >= 1 && v <= kNumRequestTypes) return v - 1;
  return kNumRequestTypes;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHealth: return "health";
    case MessageType::kStats: return "stats";
    case MessageType::kPointCount: return "point-count";
    case MessageType::kBoxQuery: return "box-query";
    case MessageType::kKnn: return "knn";
    case MessageType::kTableSample: return "tablesample";
    case MessageType::kReload: return "reload";
  }
  return "unknown";
}

void AppendFrame(const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* wire) {
  WireWriter w(wire);
  w.PutU32(kFrameMagic);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32c(payload.data(), payload.size()));
  w.PutRaw(payload.data(), payload.size());
}

void EncodeMessageHeader(const MessageHeader& header, WireWriter* w) {
  w->PutU16(header.version);
  w->PutU16(static_cast<uint16_t>(header.type));
  w->PutU32(header.flags);
  w->PutU64(header.request_id);
}

Status DecodeMessageHeader(WireReader* r, MessageHeader* header) {
  header->version = r->GetU16();
  header->type = static_cast<MessageType>(r->GetU16());
  header->flags = r->GetU32();
  header->request_id = r->GetU64();
  if (!r->ok()) return r->status();
  if (header->version != kProtocolVersion) {
    return Status::InvalidArgument("protocol: unsupported version " +
                                   std::to_string(header->version));
  }
  return Status::OK();
}

void EncodeBoxQueryRequest(const BoxQueryRequest& req, WireWriter* w) {
  EncodeCoords(req.lo, w);
  EncodeCoords(req.hi, w);
  w->PutU64(req.limit);
}

Status DecodeBoxQueryRequest(WireReader* r, BoxQueryRequest* req) {
  MDS_RETURN_NOT_OK(DecodeCoords(r, &req->lo));
  MDS_RETURN_NOT_OK(DecodeCoords(r, &req->hi));
  req->limit = r->GetU64();
  if (!r->ok()) return r->status();
  return ValidateBoxBounds(req->lo, req->hi);
}

void EncodeKnnRequest(const KnnRequest& req, WireWriter* w) {
  EncodeCoords(req.point, w);
  w->PutU32(req.k);
}

Status DecodeKnnRequest(WireReader* r, KnnRequest* req) {
  MDS_RETURN_NOT_OK(DecodeCoords(r, &req->point));
  req->k = r->GetU32();
  if (!r->ok()) return r->status();
  if (req->k == 0) {
    return Status::InvalidArgument("protocol: knn k must be positive");
  }
  for (size_t j = 0; j < req->point.size(); ++j) {
    if (std::isnan(req->point[j])) {
      return Status::InvalidArgument(
          "protocol: knn probe coordinate is NaN on axis " +
          std::to_string(j));
    }
  }
  return Status::OK();
}

void EncodeTableSampleRequest(const TableSampleRequest& req, WireWriter* w) {
  EncodeCoords(req.lo, w);
  EncodeCoords(req.hi, w);
  w->PutF64(req.percent);
  w->PutU64(req.n);
  w->PutU64(req.seed);
}

Status DecodeTableSampleRequest(WireReader* r, TableSampleRequest* req) {
  MDS_RETURN_NOT_OK(DecodeCoords(r, &req->lo));
  MDS_RETURN_NOT_OK(DecodeCoords(r, &req->hi));
  req->percent = r->GetF64();
  req->n = r->GetU64();
  req->seed = r->GetU64();
  if (!r->ok()) return r->status();
  MDS_RETURN_NOT_OK(ValidateBoxBounds(req->lo, req->hi));
  // The sampling fraction lives in (0, 1], carried as a percent in
  // (0, 100]. `!(> 0.0)` also rejects NaN.
  if (!(req->percent > 0.0) || req->percent > 100.0) {
    return Status::InvalidArgument("protocol: percent out of (0, 100]");
  }
  return Status::OK();
}

void EncodeStatus(const Status& status, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(status.code()));
  w->PutString(status.message());
}

Status DecodeStatus(WireReader* r, Status* status) {
  const uint32_t code = r->GetU32();
  const std::string message = r->GetString();
  if (!r->ok()) return r->status();
  if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("protocol: unknown status code");
  }
  *status = Status(static_cast<StatusCode>(code), message);
  return Status::OK();
}

namespace {

/// The 16-byte shard-coverage tail shared by QueryReply and KnnReply.
/// Encoded only by the mdsc coordinator (shards_total != 0); on decode its
/// presence is detected by the remaining payload length, so a plain mdsd
/// reply (no tail) and an old-encoder reply both decode as shards_total 0.
constexpr size_t kShardCoverageTailBytes = 16;

void EncodeShardCoverage(uint32_t answered, uint32_t total, uint64_t mask,
                         WireWriter* w) {
  if (total == 0) return;
  w->PutU32(answered);
  w->PutU32(total);
  w->PutU64(mask);
}

void DecodeShardCoverage(WireReader* r, uint32_t* answered, uint32_t* total,
                         uint64_t* mask) {
  if (!r->ok() || r->remaining() < kShardCoverageTailBytes) return;
  *answered = r->GetU32();
  *total = r->GetU32();
  *mask = r->GetU64();
}

}  // namespace

void EncodeQueryReply(const QueryReply& reply, WireWriter* w) {
  w->PutU64(reply.row_count);
  w->PutPodVector(reply.objids);
  w->PutU64(reply.rows_scanned);
  w->PutU64(reply.pages_fetched);
  w->PutU64(reply.pages_read);
  w->PutU64(reply.pages_skipped);
  w->PutU8(reply.degraded ? 1 : 0);
  w->PutString(reply.chosen_path);
  EncodeShardCoverage(reply.shards_answered, reply.shards_total,
                      reply.shards_mask, w);
}

Status DecodeQueryReply(WireReader* r, QueryReply* reply) {
  reply->row_count = r->GetU64();
  reply->objids = r->GetPodVector<int64_t>();
  reply->rows_scanned = r->GetU64();
  reply->pages_fetched = r->GetU64();
  reply->pages_read = r->GetU64();
  reply->pages_skipped = r->GetU64();
  reply->degraded = r->GetU8() != 0;
  reply->chosen_path = r->GetString();
  DecodeShardCoverage(r, &reply->shards_answered, &reply->shards_total,
                      &reply->shards_mask);
  return r->status();
}

void EncodeKnnReply(const KnnReply& reply, WireWriter* w) {
  w->PutPodVector(reply.neighbors);
  EncodeShardCoverage(reply.shards_answered, reply.shards_total,
                      reply.shards_mask, w);
}

Status DecodeKnnReply(WireReader* r, KnnReply* reply) {
  reply->neighbors = r->GetPodVector<WireNeighbor>();
  DecodeShardCoverage(r, &reply->shards_answered, &reply->shards_total,
                      &reply->shards_mask);
  return r->status();
}

void EncodeServerStats(const ServerStatsSnapshot& stats, WireWriter* w) {
  w->PutU64(stats.connections_accepted);
  w->PutU64(stats.connections_closed);
  w->PutU64(stats.accept_errors);
  w->PutU64(stats.protocol_errors);
  w->PutU64(stats.requests_total);
  w->PutU64(stats.replies_ok);
  w->PutU64(stats.replies_error);
  w->PutU64(stats.rejected_overload);
  w->PutU64(stats.rejected_draining);
  w->PutU64(stats.deadline_timeouts);
  w->PutU64(stats.bytes_in);
  w->PutU64(stats.bytes_out);
  w->PutU64(stats.in_flight_peak);
  w->PutU64(stats.pool_logical_reads);
  w->PutU64(stats.pool_physical_reads);
  w->PutU64(stats.cache_hits);
  w->PutU64(stats.cache_misses);
  w->PutU64(stats.cache_insertions);
  w->PutU64(stats.cache_evictions);
  w->PutU64(stats.cache_bytes);
  w->PutU64(stats.cache_entries);
  w->PutU64(stats.dataset_epoch);
  for (const RequestTypeStats& t : stats.per_type) {
    w->PutU64(t.count);
    w->PutU64(t.errors);
    w->PutU64(t.p50_us);
    w->PutU64(t.p95_us);
    w->PutU64(t.p99_us);
    w->PutU64(t.max_us);
    w->PutF64(t.mean_us);
  }
  w->PutU32(static_cast<uint32_t>(stats.shards.size()));
  for (const ShardStatsEntry& s : stats.shards) {
    w->PutU32(s.replicas);
    w->PutU32(s.healthy_replicas);
    w->PutU64(s.requests);
    w->PutU64(s.backend_errors);
    w->PutU64(s.failovers);
    w->PutU64(s.hedges_fired);
    w->PutU64(s.hedges_won);
    w->PutU64(s.p50_us);
    w->PutU64(s.p99_us);
    w->PutU32(s.open_breakers);
    w->PutU32(s.half_open_breakers);
    w->PutU64(s.retries_denied);
    w->PutU64(s.breaker_short_circuits);
  }
  w->PutU64(stats.partial_replies);
  w->PutU64(stats.slab_allocations);
  w->PutU64(stats.slab_recycles);
  w->PutU64(stats.slab_bytes_in_use);
  w->PutU64(stats.reply_tail_copies);
}

Status DecodeServerStats(WireReader* r, ServerStatsSnapshot* stats) {
  stats->connections_accepted = r->GetU64();
  stats->connections_closed = r->GetU64();
  stats->accept_errors = r->GetU64();
  stats->protocol_errors = r->GetU64();
  stats->requests_total = r->GetU64();
  stats->replies_ok = r->GetU64();
  stats->replies_error = r->GetU64();
  stats->rejected_overload = r->GetU64();
  stats->rejected_draining = r->GetU64();
  stats->deadline_timeouts = r->GetU64();
  stats->bytes_in = r->GetU64();
  stats->bytes_out = r->GetU64();
  stats->in_flight_peak = r->GetU64();
  stats->pool_logical_reads = r->GetU64();
  stats->pool_physical_reads = r->GetU64();
  stats->cache_hits = r->GetU64();
  stats->cache_misses = r->GetU64();
  stats->cache_insertions = r->GetU64();
  stats->cache_evictions = r->GetU64();
  stats->cache_bytes = r->GetU64();
  stats->cache_entries = r->GetU64();
  stats->dataset_epoch = r->GetU64();
  for (RequestTypeStats& t : stats->per_type) {
    t.count = r->GetU64();
    t.errors = r->GetU64();
    t.p50_us = r->GetU64();
    t.p95_us = r->GetU64();
    t.p99_us = r->GetU64();
    t.max_us = r->GetU64();
    t.mean_us = r->GetF64();
  }
  const uint32_t num_shards = r->GetU32();
  if (!r->ok()) return r->status();
  if (num_shards > kMaxShardStats) {
    return Status::InvalidArgument("protocol: shard stats count " +
                                   std::to_string(num_shards) +
                                   " exceeds cap");
  }
  stats->shards.resize(num_shards);
  for (ShardStatsEntry& s : stats->shards) {
    s.replicas = r->GetU32();
    s.healthy_replicas = r->GetU32();
    s.requests = r->GetU64();
    s.backend_errors = r->GetU64();
    s.failovers = r->GetU64();
    s.hedges_fired = r->GetU64();
    s.hedges_won = r->GetU64();
    s.p50_us = r->GetU64();
    s.p99_us = r->GetU64();
    s.open_breakers = r->GetU32();
    s.half_open_breakers = r->GetU32();
    s.retries_denied = r->GetU64();
    s.breaker_short_circuits = r->GetU64();
  }
  // Additive tail after the shard list: absent from an older encoder.
  if (r->ok() && r->remaining() >= 8) {
    stats->partial_replies = r->GetU64();
  }
  if (r->ok() && r->remaining() >= 8) {
    stats->slab_allocations = r->GetU64();
  }
  if (r->ok() && r->remaining() >= 8) {
    stats->slab_recycles = r->GetU64();
  }
  if (r->ok() && r->remaining() >= 8) {
    stats->slab_bytes_in_use = r->GetU64();
  }
  if (r->ok() && r->remaining() >= 8) {
    stats->reply_tail_copies = r->GetU64();
  }
  return r->status();
}

void EncodeHealthReply(const HealthReply& reply, WireWriter* w) {
  w->PutU8(reply.draining);
  w->PutU64(reply.served_rows);
  w->PutU32(reply.dim);
}

Status DecodeHealthReply(WireReader* r, HealthReply* reply) {
  reply->draining = r->GetU8();
  reply->served_rows = r->GetU64();
  reply->dim = r->GetU32();
  return r->status();
}

void EncodeReloadRequest(const ReloadRequest& req, WireWriter* w) {
  w->PutString(req.path);
}

Status DecodeReloadRequest(WireReader* r, ReloadRequest* req) {
  req->path = r->GetString();
  if (!r->ok()) return r->status();
  if (req->path.size() > 4096) {  // PATH_MAX; hostile-length guard
    return Status::InvalidArgument("protocol: reload path too long");
  }
  return Status::OK();
}

void EncodeReloadReply(const ReloadReply& reply, WireWriter* w) {
  w->PutU64(reply.old_epoch);
  w->PutU64(reply.new_epoch);
  w->PutU64(reply.served_rows);
}

Status DecodeReloadReply(WireReader* r, ReloadReply* reply) {
  reply->old_epoch = r->GetU64();
  reply->new_epoch = r->GetU64();
  reply->served_rows = r->GetU64();
  return r->status();
}

Status ReadFrame(Socket* sock, const IoDeadline& deadline,
                 std::vector<uint8_t>* payload, uint64_t* bytes_read) {
  uint8_t prefix[kFramePrefixBytes];
  MDS_RETURN_NOT_OK(sock->ReadFull(prefix, sizeof(prefix), deadline));
  WireReader r(prefix, sizeof(prefix));
  const uint32_t magic = r.GetU32();
  const uint32_t len = r.GetU32();
  const uint32_t crc = r.GetU32();
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("protocol: bad frame magic");
  }
  if (len > kMaxPayloadBytes) {
    return Status::InvalidArgument("protocol: frame length " +
                                   std::to_string(len) + " exceeds cap");
  }
  payload->resize(len);
  Status body = sock->ReadFull(payload->data(), len, deadline);
  if (body.code() == StatusCode::kNotFound) {
    // A close between prefix and body is a truncated frame, not the clean
    // frame-boundary close NotFound signals.
    return Status::Unavailable("protocol: connection closed mid-frame");
  }
  MDS_RETURN_NOT_OK(body);
  if (Crc32c(payload->data(), len) != crc) {
    return Status::Corruption("protocol: frame CRC mismatch");
  }
  if (bytes_read != nullptr) *bytes_read += kFramePrefixBytes + len;
  return Status::OK();
}

Status WriteFrame(Socket* sock, const IoDeadline& deadline,
                  const std::vector<uint8_t>& payload,
                  uint64_t* bytes_written) {
  std::vector<uint8_t> wire;
  wire.reserve(kFramePrefixBytes + payload.size());
  AppendFrame(payload, &wire);
  MDS_RETURN_NOT_OK(sock->WriteFull(wire.data(), wire.size(), deadline));
  if (bytes_written != nullptr) *bytes_written += wire.size();
  return Status::OK();
}

}  // namespace protocol
}  // namespace mds
