// mdsc — the mds shard coordinator binary.
//
//   mdsc --shard=HOST:PORT[,HOST:PORT...] [--shard=...]...
//        | --shard-map=FILE
//        [--port=N] [--port-file=PATH]
//        [--max-in-flight=N] [--idle-timeout-ms=N]
//        [--sub-deadline-ms=N] [--hedge-delay-ms=N]
//        [--connect-timeout-ms=N] [--fanout-threads=N]
//        [--breaker-failures=K] [--replica-backoff-ms=N]
//        [--replica-backoff-max-ms=N] [--retry-budget-ratio=R]
//        [--retry-budget-cap=N] [--leg-slack-ms=N] [--jitter-seed=N]
//
// Each --shard names the replica set of one shard (replicas separated by
// commas, nearest first); shards are given in shard order. --shard-map
// reads the same grammar from a file instead: one shard per line, '#'
// comments and blank lines skipped. The backends must be mdsd processes
// started with --shard-index=i --shard-count=N over the same --n/--seed
// (see docs/OPERATIONS.md for a copy-pasteable walkthrough).
//
// The coordinator speaks the same wire protocol as mdsd, so any mdsd
// client works against it unchanged. SIGTERM/SIGINT trigger a graceful
// drain, exactly like mdsd.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/coordinator.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mdsc --shard=HOST:PORT[,HOST:PORT...] [--shard=...]... "
               "| --shard-map=FILE\n"
               "            [--port=N] [--port-file=PATH] "
               "[--max-in-flight=N]\n"
               "            [--idle-timeout-ms=N] [--sub-deadline-ms=N] "
               "[--hedge-delay-ms=N]\n"
               "            [--connect-timeout-ms=N] [--fanout-threads=N]\n"
               "            [--breaker-failures=K] [--replica-backoff-ms=N]\n"
               "            [--replica-backoff-max-ms=N] "
               "[--retry-budget-ratio=R]\n"
               "            [--retry-budget-cap=N] [--leg-slack-ms=N] "
               "[--jitter-seed=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mds::CoordinatorConfig config;
  std::string map_text;  // built from --shard flags or read from --shard-map
  std::string map_file;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--shard", &v)) {
      if (!map_text.empty()) map_text += ';';
      map_text += v;
    } else if (ParseFlag(argv[i], "--shard-map", &v)) {
      map_file = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      config.port = static_cast<uint16_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (ParseFlag(argv[i], "--max-in-flight", &v)) {
      config.max_in_flight = std::stoull(v);
    } else if (ParseFlag(argv[i], "--idle-timeout-ms", &v)) {
      config.idle_timeout_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--sub-deadline-ms", &v)) {
      config.sub_deadline_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--hedge-delay-ms", &v)) {
      config.hedge_delay_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--connect-timeout-ms", &v)) {
      config.connect_timeout_ms = std::stoull(v);
    } else if (ParseFlag(argv[i], "--fanout-threads", &v)) {
      config.fanout_threads = static_cast<unsigned>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--breaker-failures", &v)) {
      config.breaker_failure_threshold = static_cast<uint32_t>(std::stoul(v));
      if (config.breaker_failure_threshold == 0) {
        std::fprintf(stderr, "mdsc: --breaker-failures must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(argv[i], "--replica-backoff-ms", &v)) {
      config.replica_backoff_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--replica-backoff-max-ms", &v)) {
      config.replica_backoff_max_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--retry-budget-ratio", &v)) {
      config.retry_budget_ratio = std::stod(v);
    } else if (ParseFlag(argv[i], "--retry-budget-cap", &v)) {
      config.retry_budget_cap = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--leg-slack-ms", &v)) {
      config.leg_slack_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (ParseFlag(argv[i], "--jitter-seed", &v)) {
      config.jitter_seed = std::stoull(v);
    } else {
      return Usage();
    }
  }

  if (!map_file.empty()) {
    if (!map_text.empty()) {
      std::fprintf(stderr, "mdsc: give --shard or --shard-map, not both\n");
      return 2;
    }
    std::FILE* f = std::fopen(map_file.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "mdsc: cannot read shard map %s\n",
                   map_file.c_str());
      return 1;
    }
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      map_text.append(buf, n);
    }
    std::fclose(f);
  }
  if (map_text.empty()) return Usage();

  auto map = mds::ParseShardMap(map_text);
  if (!map.ok()) {
    std::fprintf(stderr, "mdsc: %s\n", map.status().ToString().c_str());
    return 1;
  }

  mds::Coordinator coordinator(*map, config);
  mds::Status started = coordinator.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "mdsc: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("mdsc: coordinating %zu shards, %llu rows on 127.0.0.1:%u\n",
              map->shards.size(),
              static_cast<unsigned long long>(coordinator.served_rows()),
              static_cast<unsigned>(coordinator.port()));
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(coordinator.port()));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "mdsc: cannot write port file %s\n",
                   port_file.c_str());
      coordinator.Shutdown();
      return 1;
    }
  }

  // Park until a signal arrives; the coordinator's threads do all the work.
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);  // returns on any delivered signal
  }

  std::fprintf(stderr, "mdsc: signal received, draining\n");
  coordinator.Shutdown();
  std::fprintf(stderr, "mdsc: drained, exiting\n");
  return 0;
}
