#ifndef MDS_SERVER_PROTOCOL_H_
#define MDS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/socket.h"
#include "geom/box.h"
#include "server/wire.h"

namespace mds {

/// The mdsd wire protocol: length-prefixed CRC-framed little-endian binary
/// messages over TCP, one request/reply pair per frame exchange.
///
/// Frame layout (12-byte prefix + payload):
///
///   +--------+-------------+-------------+====================+
///   | magic  | payload_len | payload_crc |  payload bytes ... |
///   |  u32   |     u32     |  u32 CRC32C |   (payload_len)    |
///   +--------+-------------+-------------+====================+
///
/// The CRC (the storage layer's CRC32C, common/crc32c.h) covers exactly the
/// payload bytes, so a torn or bit-flipped frame is rejected before any
/// field of it is interpreted. The payload begins with a MessageHeader:
///
///   +---------+------+-------+------------+
///   | version | type | flags | request_id |
///   |   u16   | u16  |  u32  |    u64     |
///   +---------+------+-------+------------+
///
/// followed by the type-specific body (requests carry a deadline_ms field
/// first). Replies echo the request's type and request_id and set
/// kFlagReply; their body starts with a wire-encoded Status. Protocol
/// violations (bad magic, bad CRC, oversized length, unknown version,
/// truncated body) are not answerable — the server closes the connection.
namespace protocol {

inline constexpr uint32_t kFrameMagic = 0x3151444Du;  // "MDQ1" on the wire
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kFramePrefixBytes = 12;
/// Upper bound on a payload a peer may declare. Large enough for a
/// multi-million-row reply, small enough that a hostile length prefix
/// cannot make the receiver allocate unbounded memory.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;
/// Query dimensionality cap (matches the engine's kMaxQueryDim).
inline constexpr uint32_t kMaxDim = 16;

enum class MessageType : uint16_t {
  kHealth = 1,
  kStats = 2,
  kPointCount = 3,
  kBoxQuery = 4,
  kKnn = 5,
  kTableSample = 6,
  /// Admin: hot-swap the served dataset (additive, PR 9). Not counted in
  /// per-type stats arrays (kNumRequestTypes stays 6: the stats body
  /// encodes per_type as a fixed-length array, so growing it would break
  /// the wire for older decoders).
  kReload = 7,
};
inline constexpr size_t kNumRequestTypes = 6;
/// Index of a request type in per-type stats arrays, or kNumRequestTypes
/// for out-of-range values.
size_t TypeIndex(MessageType type);
const char* MessageTypeName(MessageType type);

// MessageHeader.flags bits.
inline constexpr uint32_t kFlagReply = 1u << 0;
/// Request: permit a degraded (partial) answer — checksum-failed pages are
/// skipped instead of failing the query (PR 3's skip-corrupt scan mode).
inline constexpr uint32_t kFlagSkipCorrupt = 1u << 1;
/// Request: planner hint — force the clustered full scan.
inline constexpr uint32_t kFlagHintFullScan = 1u << 2;
/// Request: planner hint — force the index path (error if infeasible).
inline constexpr uint32_t kFlagHintIndex = 1u << 3;
/// Reply: the result is degraded (see StorageQueryResult::degraded).
inline constexpr uint32_t kFlagDegraded = 1u << 4;
/// Reply: the server is draining; retry against another replica.
inline constexpr uint32_t kFlagDraining = 1u << 5;
/// Request: the caller accepts a partial answer from the mdsc coordinator
/// when a shard is exhausted (retry budget spent, breaker open, or the
/// deadline cannot cover another attempt) — merged results from the
/// surviving shards instead of a blanket failure. A plain mdsd ignores it.
inline constexpr uint32_t kFlagAllowPartial = 1u << 6;
/// Reply: one or more shards did not contribute (set together with
/// kFlagDegraded; see the shard-coverage tail on QueryReply/KnnReply).
inline constexpr uint32_t kFlagPartial = 1u << 7;

struct MessageHeader {
  uint16_t version = kProtocolVersion;
  MessageType type = MessageType::kHealth;
  uint32_t flags = 0;
  uint64_t request_id = 0;
};
/// Encoded MessageHeader size. The response cache stores reply payloads
/// from this offset on, so a hit can be re-headed with the requester's own
/// request id.
inline constexpr size_t kMessageHeaderBytes = 16;

// --- Request bodies --------------------------------------------------------
//
// Every request body begins with a u32 deadline_ms (0 = none) written and
// consumed at the exchange layer (QueryClient::RoundTrip on the way out,
// the server's I/O thread on the way in); the Encode/Decode functions
// below cover only the fields after it.

/// kPointCount / kBoxQuery: an axis-aligned box over the served dimensions.
/// kPointCount returns only the row count; kBoxQuery returns the objids.
struct BoxQueryRequest {
  std::vector<double> lo, hi;
  uint64_t limit = 0;  ///< TOP(n); 0 = unlimited (kBoxQuery only)
};

/// kKnn: the k nearest stored points to `point`.
struct KnnRequest {
  std::vector<double> point;
  uint32_t k = 1;
};

/// kTableSample: TABLESAMPLE SYSTEM(percent) + TOP(n) inside a box (E3).
struct TableSampleRequest {
  std::vector<double> lo, hi;
  double percent = 1.0;
  uint64_t n = 1;
  uint64_t seed = 0;  ///< page-sampling RNG seed (reproducible samples)
};

/// kReload: hot-swap the served dataset to the file at `path` (a path on
/// the SERVER's filesystem); an empty path reloads the current source
/// (same file, or a rebuild of the same synthetic config). The mdsc
/// coordinator broadcasts a reload to every replica of every shard. The
/// load runs on a worker thread — in-flight queries finish against the old
/// snapshot and the response cache is invalidated wholesale by the epoch
/// bump.
struct ReloadRequest {
  std::string path;
};

// --- Reply bodies ----------------------------------------------------------

/// kPointCount / kBoxQuery / kTableSample reply: result rows plus the
/// per-query I/O accounting (QueryStats essentials), so a remote client
/// sees the same E2-style instrumentation an embedded caller would.
struct QueryReply {
  uint64_t row_count = 0;
  std::vector<int64_t> objids;  ///< empty for kPointCount
  uint64_t rows_scanned = 0;
  uint64_t pages_fetched = 0;
  uint64_t pages_read = 0;
  uint64_t pages_skipped = 0;
  bool degraded = false;
  std::string chosen_path;  ///< planner's pick ("kd-tree", "full-scan", ...)
  /// Shard-coverage tail, written only by the mdsc coordinator (encoded
  /// iff shards_total != 0; a plain mdsd reply ends at chosen_path and
  /// old decoders simply stop there). shards_mask bit i is set when shard
  /// i contributed (shards beyond 63 saturate the mask). A partial reply
  /// (shards_answered < shards_total) also sets kFlagPartial +
  /// kFlagDegraded and keeps every count honest over the answering
  /// shards only.
  uint32_t shards_answered = 0;
  uint32_t shards_total = 0;  ///< 0 = not a coordinator reply
  uint64_t shards_mask = 0;
};

/// One kNN answer row (trivially copyable for bulk encoding).
struct WireNeighbor {
  int64_t id = 0;
  double squared_distance = 0.0;
};

struct KnnReply {
  std::vector<WireNeighbor> neighbors;
  /// Shard-coverage tail, exactly as on QueryReply. A partial kNN merge
  /// is flagged because its neighbors may not be the global nearest —
  /// a missing shard could hold closer points.
  uint32_t shards_answered = 0;
  uint32_t shards_total = 0;  ///< 0 = not a coordinator reply
  uint64_t shards_mask = 0;
};

/// Per-request-type latency digest inside a stats reply (microseconds,
/// from the server's log-bucketed histograms).
struct RequestTypeStats {
  uint64_t count = 0;
  uint64_t errors = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  double mean_us = 0.0;
};

/// Per-shard routing counters inside a stats reply. Only the mdsc
/// coordinator emits a non-empty list (one entry per shard, in shard
/// order); a plain mdsd emits zero entries. Latencies are microseconds
/// over successful backend sub-requests for that shard.
struct ShardStatsEntry {
  uint32_t replicas = 0;          ///< configured replicas
  uint32_t healthy_replicas = 0;  ///< replicas not in failure backoff
  uint64_t requests = 0;          ///< sub-requests routed to this shard
  uint64_t backend_errors = 0;    ///< failed attempts, summed over replicas
  uint64_t failovers = 0;         ///< retryable failures retried elsewhere
  uint64_t hedges_fired = 0;      ///< speculative second attempts sent
  uint64_t hedges_won = 0;        ///< hedges that beat the primary attempt
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint32_t open_breakers = 0;       ///< replicas with an open circuit breaker
  uint32_t half_open_breakers = 0;  ///< breakers admitting a single probe
  uint64_t retries_denied = 0;      ///< failovers/hedges denied by the retry budget
  uint64_t breaker_short_circuits = 0;  ///< attempts skipped on an open breaker
};
/// Decode-side cap on the shard list length (hostile-length guard).
inline constexpr uint32_t kMaxShardStats = 4096;

/// kStats reply: the server's counters since start, including the embedded
/// BufferPool read-counter delta over the same window.
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t accept_errors = 0;  ///< accept() fd-exhaustion backoffs (EMFILE)
  uint64_t protocol_errors = 0;
  uint64_t requests_total = 0;
  uint64_t replies_ok = 0;
  uint64_t replies_error = 0;
  uint64_t rejected_overload = 0;   ///< admission control (queue/in-flight)
  uint64_t rejected_draining = 0;   ///< arrived during graceful drain
  uint64_t deadline_timeouts = 0;   ///< expired before execution finished
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t in_flight_peak = 0;
  uint64_t pool_logical_reads = 0;   ///< BufferPool delta since server start
  uint64_t pool_physical_reads = 0;
  /// Response cache (server/response_cache.h); all zero when disabled.
  uint64_t cache_hits = 0;        ///< replies served inline on the I/O thread
  uint64_t cache_misses = 0;      ///< cacheable requests that executed
  uint64_t cache_insertions = 0;
  uint64_t cache_evictions = 0;   ///< LRU evictions under the byte bound
  uint64_t cache_bytes = 0;       ///< currently charged bytes
  uint64_t cache_entries = 0;
  uint64_t dataset_epoch = 0;     ///< generation the served data is at
  RequestTypeStats per_type[kNumRequestTypes];
  /// Coordinator-only per-shard counters (empty from a plain mdsd); an
  /// additive tail extension of the stats body — see docs/PROTOCOL.md.
  std::vector<ShardStatsEntry> shards;
  /// Partial (degraded, some-shards-missing) replies served; a further
  /// additive tail after the shard list. Always zero from a plain mdsd.
  uint64_t partial_replies = 0;
  /// Reply-path memory counters — a further additive tail (each field
  /// decoded only when present, so older encoders interoperate).
  /// Slab-pool slices handed out / served from a free list / capacity
  /// bytes currently pinned, and post-encode payload memcpys on the
  /// reply path (zero on a pure cache-hit workload).
  uint64_t slab_allocations = 0;
  uint64_t slab_recycles = 0;
  uint64_t slab_bytes_in_use = 0;
  uint64_t reply_tail_copies = 0;
};

/// kHealth reply body.
struct HealthReply {
  uint8_t draining = 0;
  uint64_t served_rows = 0;
  uint32_t dim = 0;
};

/// kReload reply body: the epoch transition and the new row count. From a
/// coordinator, old/new epochs are the min over shards (every shard must
/// succeed or the whole reload fails) and served_rows sums the shards.
struct ReloadReply {
  uint64_t old_epoch = 0;
  uint64_t new_epoch = 0;
  uint64_t served_rows = 0;
};

// --- Codec -----------------------------------------------------------------

/// Wraps `payload` in a frame (magic, length, CRC32C) appended to `wire`.
void AppendFrame(const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* wire);

void EncodeMessageHeader(const MessageHeader& header, WireWriter* w);
Status DecodeMessageHeader(WireReader* r, MessageHeader* header);

/// Shared coordinate-vector codec (u32 dim + dim f64), bounds-checked to
/// kMaxDim on decode.
void EncodeCoords(const std::vector<double>& v, WireWriter* w);
Status DecodeCoords(WireReader* r, std::vector<double>* v);

void EncodeBoxQueryRequest(const BoxQueryRequest& req, WireWriter* w);
Status DecodeBoxQueryRequest(WireReader* r, BoxQueryRequest* req);
void EncodeKnnRequest(const KnnRequest& req, WireWriter* w);
Status DecodeKnnRequest(WireReader* r, KnnRequest* req);
void EncodeTableSampleRequest(const TableSampleRequest& req, WireWriter* w);
Status DecodeTableSampleRequest(WireReader* r, TableSampleRequest* req);

/// Replies carry a Status first; the body follows only when it is OK.
void EncodeStatus(const Status& status, WireWriter* w);
Status DecodeStatus(WireReader* r, Status* status);

void EncodeQueryReply(const QueryReply& reply, WireWriter* w);
Status DecodeQueryReply(WireReader* r, QueryReply* reply);
void EncodeKnnReply(const KnnReply& reply, WireWriter* w);
Status DecodeKnnReply(WireReader* r, KnnReply* reply);
void EncodeServerStats(const ServerStatsSnapshot& stats, WireWriter* w);
Status DecodeServerStats(WireReader* r, ServerStatsSnapshot* stats);
void EncodeHealthReply(const HealthReply& reply, WireWriter* w);
Status DecodeHealthReply(WireReader* r, HealthReply* reply);
void EncodeReloadRequest(const ReloadRequest& req, WireWriter* w);
Status DecodeReloadRequest(WireReader* r, ReloadRequest* req);
void EncodeReloadReply(const ReloadReply& reply, WireWriter* w);
Status DecodeReloadReply(WireReader* r, ReloadReply* reply);

// --- Framed socket I/O -----------------------------------------------------

/// Reads one frame into `payload`, verifying magic, length bound and CRC.
/// Failure taxonomy: NotFound = clean close on a frame boundary;
/// kUnavailable = deadline or mid-frame close; kInvalidArgument /
/// kCorruption = protocol violation (caller must close the connection).
/// `bytes_read` (optional) accumulates the on-wire byte count.
Status ReadFrame(Socket* sock, const IoDeadline& deadline,
                 std::vector<uint8_t>* payload, uint64_t* bytes_read = nullptr);

/// Frames and writes one payload. `bytes_written` (optional) accumulates
/// the on-wire byte count.
Status WriteFrame(Socket* sock, const IoDeadline& deadline,
                  const std::vector<uint8_t>& payload,
                  uint64_t* bytes_written = nullptr);

}  // namespace protocol
}  // namespace mds

#endif  // MDS_SERVER_PROTOCOL_H_
