#include "server/dataset.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "storage/mmap_pager.h"

namespace mds {

namespace {

std::string BuildContext(const DatasetConfig& config) {
  return "ServedDataset::Build(rows=" + std::to_string(config.num_rows) +
         ", seed=" + std::to_string(config.seed) +
         ", shard=" + std::to_string(config.shard_index) + "/" +
         std::to_string(config.shard_count) + ")";
}

std::string LoadContext(const std::string& path) {
  return "ServedDataset::Load('" + path + "')";
}

/// Validates a shard slice against the full tree and returns the heap
/// index of the shard's subtree root (the shard_index-th node of level
/// log2(shard_count)). Shared by Build, Load and WriteDatasetFile so all
/// three agree on which rows a shard serves.
Result<uint32_t> ShardSubtreeNode(const KdTreeIndex& tree,
                                  uint32_t shard_index, uint32_t shard_count) {
  if ((shard_count & (shard_count - 1)) != 0) {
    return Status::InvalidArgument("shard_count " +
                                   std::to_string(shard_count) +
                                   " is not a power of two");
  }
  if (shard_index >= shard_count) {
    return Status::InvalidArgument(
        "shard_index " + std::to_string(shard_index) +
        " out of range for shard_count " + std::to_string(shard_count));
  }
  if (shard_count > tree.num_leaves()) {
    return Status::InvalidArgument(
        "shard_count " + std::to_string(shard_count) + " exceeds " +
        std::to_string(tree.num_leaves()) + " tree leaves");
  }
  uint32_t level = 0;
  while ((1u << level) < shard_count) ++level;
  return (1u << level) - 1 + shard_index;
}

}  // namespace

Result<ServedDataset> ServedDataset::Build(const DatasetConfig& config) {
  ServedDataset ds;

  CatalogConfig catalog_config;
  catalog_config.num_objects = config.num_rows;
  catalog_config.seed = config.seed;
  ds.catalog_ = std::make_unique<Catalog>(GenerateCatalog(catalog_config));

  auto tree = KdTreeIndex::Build(&ds.catalog_->colors);
  if (!tree.ok()) return AnnotateStatus(tree.status(), BuildContext(config));

  if (config.shard_count > 1) {
    auto node =
        ShardSubtreeNode(*tree, config.shard_index, config.shard_count);
    if (!node.ok()) return AnnotateStatus(node.status(), BuildContext(config));
    auto sub = KdTreeIndex::ExtractSubtree(*tree, *node);
    if (!sub.ok()) return AnnotateStatus(sub.status(), BuildContext(config));
    ds.tree_ = std::make_unique<KdTreeIndex>(std::move(*sub));
    ds.shard_index_ = config.shard_index;
    ds.shard_count_ = config.shard_count;
  } else {
    ds.tree_ = std::make_unique<KdTreeIndex>(std::move(*tree));
  }

  ds.pager_ = std::make_unique<MemPager>();
  ds.pool_ = std::make_unique<BufferPool>(ds.pager_.get(), config.pool_pages);
  auto table = MaterializePointTable(ds.pool_.get(), ds.catalog_->colors,
                                     ds.tree_->clustered_order());
  if (!table.ok()) return AnnotateStatus(table.status(), BuildContext(config));
  ds.table_ = std::make_unique<Table>(std::move(*table));
  ds.binding_ = BindPointTable(ds.table_.get(), kNumBands);
  ds.seed_ = config.seed;
  ds.source_ = "synthetic seed=" + std::to_string(config.seed) +
               " rows=" + std::to_string(config.num_rows);
  return ds;
}

Result<ServedDataset> ServedDataset::Load(const std::string& path) {
  return Load(path, LoadOptions{});
}

Result<ServedDataset> ServedDataset::Load(const std::string& path,
                                          const LoadOptions& options) {
  ServedDataset ds;

  if (options.prefer_mmap) {
    auto mapped = MmapPager::Open(path);
    if (mapped.ok()) {
      ds.pager_ = std::move(*mapped);
      ds.mmap_backed_ = true;
    }
    // Any mmap failure falls through to FilePager, which re-runs the same
    // existence/size validation and reports its own (equivalent) error.
  }
  if (ds.pager_ == nullptr) {
    auto file = FilePager::Open(path);
    if (!file.ok()) return AnnotateStatus(file.status(), LoadContext(path));
    ds.pager_ = std::move(*file);
  }
  ds.pool_ = std::make_unique<BufferPool>(ds.pager_.get(), options.pool_pages);

  auto head = IndexIo::ReadSuperblock(ds.pool_.get());
  if (!head.ok()) return AnnotateStatus(head.status(), LoadContext(path));
  auto manifest = IndexIo::LoadManifest(ds.pool_.get(), *head);
  if (!manifest.ok()) {
    return AnnotateStatus(manifest.status(), LoadContext(path));
  }

  auto points = IndexIo::LoadPointSet(ds.pool_.get(), manifest->points_head);
  if (!points.ok()) return AnnotateStatus(points.status(), LoadContext(path));
  if (points->dim() != manifest->dim ||
      points->size() != manifest->total_rows) {
    return Status::Corruption(
        LoadContext(path) + ": point set (dim=" +
        std::to_string(points->dim()) + ", rows=" +
        std::to_string(points->size()) + ") does not match manifest (dim=" +
        std::to_string(manifest->dim) + ", rows=" +
        std::to_string(manifest->total_rows) + ")");
  }
  ds.loaded_points_ = std::make_unique<PointSet>(std::move(*points));

  auto tree = IndexIo::LoadKdTree(ds.pool_.get(), manifest->kdtree_head,
                                  ds.loaded_points_.get());
  if (!tree.ok()) return AnnotateStatus(tree.status(), LoadContext(path));

  if (manifest->shard_count > 1) {
    auto node =
        ShardSubtreeNode(*tree, manifest->shard_index, manifest->shard_count);
    if (!node.ok()) return AnnotateStatus(node.status(), LoadContext(path));
    auto sub = KdTreeIndex::ExtractSubtree(*tree, *node);
    if (!sub.ok()) return AnnotateStatus(sub.status(), LoadContext(path));
    ds.tree_ = std::make_unique<KdTreeIndex>(std::move(*sub));
  } else {
    ds.tree_ = std::make_unique<KdTreeIndex>(std::move(*tree));
  }
  ds.shard_index_ = manifest->shard_index;
  ds.shard_count_ = manifest->shard_count;

  if (ds.tree_->num_points() != manifest->table_rows) {
    return Status::Corruption(
        LoadContext(path) + ": stored table has " +
        std::to_string(manifest->table_rows) +
        " rows but the shard subtree covers " +
        std::to_string(ds.tree_->num_points()));
  }

  auto table = Table::Attach(ds.pool_.get(), PointTableSchema(manifest->dim),
                             manifest->table_pages, manifest->table_rows);
  if (!table.ok()) return AnnotateStatus(table.status(), LoadContext(path));
  ds.table_ = std::make_unique<Table>(std::move(*table));
  ds.binding_ = BindPointTable(ds.table_.get(), manifest->dim);
  ds.seed_ = manifest->seed;
  ds.source_ = "file:" + path;
  return ds;
}

Status WriteDatasetFile(const DatasetFileOptions& options,
                        const std::string& path) {
  const DatasetConfig& config = options.dataset;
  const std::string context = "WriteDatasetFile('" + path + "')";

  auto pager = FilePager::Create(path);
  if (!pager.ok()) return AnnotateStatus(pager.status(), context);
  BufferPool pool(pager->get(), config.pool_pages);

  // Reserve page 0 for the superblock before any chain allocates a page:
  // WriteSuperblock stamps it last, as the commit point.
  {
    auto zero = pool.Allocate();
    if (!zero.ok()) return AnnotateStatus(zero.status(), context);
    if (zero->id() != 0) {
      return Status::Internal(context + ": superblock page was not page 0");
    }
  }

  DatasetManifest manifest;
  Catalog catalog;  // keeps generated points alive through the writes
  const PointSet* points = options.ingest;
  if (points == nullptr) {
    CatalogConfig catalog_config;
    catalog_config.num_objects = config.num_rows;
    catalog_config.seed = config.seed;
    catalog = GenerateCatalog(catalog_config);
    points = &catalog.colors;
    manifest.seed = config.seed;
  }
  if (points->size() == 0 || points->dim() == 0) {
    return Status::InvalidArgument(context + ": empty point set");
  }

  auto tree = KdTreeIndex::Build(points);
  if (!tree.ok()) return AnnotateStatus(tree.status(), context);

  const uint32_t shard_count = config.shard_count == 0 ? 1 : config.shard_count;
  std::optional<KdTreeIndex> shard_tree;
  if (shard_count > 1) {
    auto node = ShardSubtreeNode(*tree, config.shard_index, shard_count);
    if (!node.ok()) return AnnotateStatus(node.status(), context);
    auto sub = KdTreeIndex::ExtractSubtree(*tree, *node);
    if (!sub.ok()) return AnnotateStatus(sub.status(), context);
    shard_tree.emplace(std::move(*sub));
    manifest.shard_index = config.shard_index;
    manifest.shard_count = shard_count;
  }
  const std::vector<uint64_t>& order =
      shard_tree ? shard_tree->clustered_order() : tree->clustered_order();

  auto table = MaterializePointTable(&pool, *points, order);
  if (!table.ok()) return AnnotateStatus(table.status(), context);

  manifest.dim = static_cast<uint32_t>(points->dim());
  manifest.table_rows = table->num_rows();
  manifest.total_rows = points->size();
  manifest.provenance =
      !options.provenance.empty() ? options.provenance
      : options.ingest != nullptr
          ? "ingested rows=" + std::to_string(points->size())
          : "synthetic seed=" + std::to_string(config.seed) +
                " rows=" + std::to_string(config.num_rows);
  for (uint64_t i = 0; i < table->num_pages(); ++i) {
    manifest.table_pages.push_back(table->page_id(i));
  }

  auto points_head = IndexIo::SavePointSet(&pool, *points);
  if (!points_head.ok()) return AnnotateStatus(points_head.status(), context);
  manifest.points_head = *points_head;

  // The FULL tree is persisted (LoadKdTree validates against the full
  // point set); Load re-extracts the shard subtree.
  auto kd_head = IndexIo::SaveKdTree(&pool, *tree);
  if (!kd_head.ok()) return AnnotateStatus(kd_head.status(), context);
  manifest.kdtree_head = *kd_head;

  if (options.include_grid) {
    auto grid = LayeredGridIndex::Build(points);
    if (!grid.ok()) return AnnotateStatus(grid.status(), context);
    auto grid_head = IndexIo::SaveLayeredGrid(&pool, *grid);
    if (!grid_head.ok()) return AnnotateStatus(grid_head.status(), context);
    manifest.grid_head = *grid_head;
  }
  if (options.include_voronoi) {
    auto voronoi = VoronoiIndex::Build(points);
    if (!voronoi.ok()) return AnnotateStatus(voronoi.status(), context);
    auto voronoi_head = IndexIo::SaveVoronoi(&pool, *voronoi);
    if (!voronoi_head.ok()) {
      return AnnotateStatus(voronoi_head.status(), context);
    }
    manifest.voronoi_head = *voronoi_head;
  }

  auto manifest_head = IndexIo::SaveManifest(&pool, manifest);
  if (!manifest_head.ok()) {
    return AnnotateStatus(manifest_head.status(), context);
  }
  Status stamped = IndexIo::WriteSuperblock(&pool, *manifest_head);
  if (!stamped.ok()) return AnnotateStatus(stamped, context);
  return AnnotateStatus((*pager)->Sync(), context);
}

}  // namespace mds
