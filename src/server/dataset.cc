#include "server/dataset.h"

#include <string>

namespace mds {

Result<ServedDataset> ServedDataset::Build(const DatasetConfig& config) {
  ServedDataset ds;

  CatalogConfig catalog_config;
  catalog_config.num_objects = config.num_rows;
  catalog_config.seed = config.seed;
  ds.catalog_ = std::make_unique<Catalog>(GenerateCatalog(catalog_config));

  auto tree = KdTreeIndex::Build(&ds.catalog_->colors);
  if (!tree.ok()) return AnnotateStatus(tree.status(), "ServedDataset");

  if (config.shard_count > 1) {
    const uint32_t n = config.shard_count;
    if ((n & (n - 1)) != 0) {
      return Status::InvalidArgument("ServedDataset: shard_count " +
                                     std::to_string(n) +
                                     " is not a power of two");
    }
    if (config.shard_index >= n) {
      return Status::InvalidArgument(
          "ServedDataset: shard_index " + std::to_string(config.shard_index) +
          " out of range for shard_count " + std::to_string(n));
    }
    if (n > tree->num_leaves()) {
      return Status::InvalidArgument(
          "ServedDataset: shard_count " + std::to_string(n) + " exceeds " +
          std::to_string(tree->num_leaves()) + " tree leaves");
    }
    uint32_t level = 0;
    while ((1u << level) < n) ++level;
    const uint32_t node_index = (1u << level) - 1 + config.shard_index;
    auto sub = KdTreeIndex::ExtractSubtree(*tree, node_index);
    if (!sub.ok()) return AnnotateStatus(sub.status(), "ServedDataset");
    ds.tree_ = std::make_unique<KdTreeIndex>(std::move(*sub));
    ds.shard_index_ = config.shard_index;
    ds.shard_count_ = n;
  } else {
    ds.tree_ = std::make_unique<KdTreeIndex>(std::move(*tree));
  }

  ds.pager_ = std::make_unique<MemPager>();
  ds.pool_ = std::make_unique<BufferPool>(ds.pager_.get(), config.pool_pages);
  auto table = MaterializePointTable(ds.pool_.get(), ds.catalog_->colors,
                                     ds.tree_->clustered_order());
  if (!table.ok()) return AnnotateStatus(table.status(), "ServedDataset");
  ds.table_ = std::make_unique<Table>(std::move(*table));
  ds.binding_ = BindPointTable(ds.table_.get(), kNumBands);
  return ds;
}

}  // namespace mds
