#include "server/dataset.h"

namespace mds {

Result<ServedDataset> ServedDataset::Build(const DatasetConfig& config) {
  ServedDataset ds;

  CatalogConfig catalog_config;
  catalog_config.num_objects = config.num_rows;
  catalog_config.seed = config.seed;
  ds.catalog_ = std::make_unique<Catalog>(GenerateCatalog(catalog_config));

  auto tree = KdTreeIndex::Build(&ds.catalog_->colors);
  if (!tree.ok()) return AnnotateStatus(tree.status(), "ServedDataset");
  ds.tree_ = std::make_unique<KdTreeIndex>(std::move(*tree));

  ds.pager_ = std::make_unique<MemPager>();
  ds.pool_ = std::make_unique<BufferPool>(ds.pager_.get(), config.pool_pages);
  auto table = MaterializePointTable(ds.pool_.get(), ds.catalog_->colors,
                                     ds.tree_->clustered_order());
  if (!table.ok()) return AnnotateStatus(table.status(), "ServedDataset");
  ds.table_ = std::make_unique<Table>(std::move(*table));
  ds.binding_ = BindPointTable(ds.table_.get(), kNumBands);
  return ds;
}

}  // namespace mds
