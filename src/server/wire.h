#ifndef MDS_SERVER_WIRE_H_
#define MDS_SERVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace mds {

/// Append-only little-endian encoder for protocol payloads. All multi-byte
/// fields go through memcpy so the codec is alignment- and
/// strict-aliasing-safe; the library already assumes a little-endian host
/// (storage pages are memcpy'd), so the wire format matches the host
/// format byte for byte.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  template <typename T>
  void PutPodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(T));
  }

  void PutRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian decoder over a received payload. Every
/// getter fails (sticky `status()`) instead of reading past the end, so a
/// truncated or hostile payload can never walk the decoder out of its
/// buffer — the protocol-robustness contract server_protocol_test fuzzes.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t GetU8() {
    uint8_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint16_t GetU16() {
    uint16_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  double GetF64() {
    double v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }

  std::string GetString() {
    const uint32_t n = GetU32();
    if (!ok() || n > remaining()) {
      Fail("string length exceeds payload");
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> GetPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = GetU64();
    // Count-vs-payload validation (the Tlv lesson): the claimed element
    // count must fit in the bytes that are actually present.
    if (!ok() || n > remaining() / sizeof(T)) {
      Fail("vector count exceeds payload");
      return {};
    }
    std::vector<T> v(static_cast<size_t>(n));
    GetRaw(v.data(), v.size() * sizeof(T));
    return v;
  }

  void GetRaw(void* out, size_t n) {
    if (!status_.ok()) return;
    if (n > remaining()) {
      Fail("read past end of payload");
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  /// Rejects trailing bytes: a well-formed message consumes its payload
  /// exactly.
  Status ExpectEnd() {
    if (!status_.ok()) return status_;
    if (remaining() != 0) {
      Fail("trailing bytes after message");
    }
    return status_;
  }

 private:
  void Fail(const char* why) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument(std::string("wire decode: ") + why);
    }
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace mds

#endif  // MDS_SERVER_WIRE_H_
