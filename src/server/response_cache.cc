#include "server/response_cache.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/logging.h"

namespace mds {

namespace {

/// Fixed per-entry accounting overhead: list node, map slot, slice control
/// block. Deliberately generous so the byte bound is honest about real
/// memory, not just payload bytes.
constexpr size_t kEntryOverhead = 64;

/// Charge for one entry: key storage plus the slice *capacity* (the slab
/// class actually held, which for an oversize slice equals its length)
/// plus fixed overhead. Capacity, not size — a 300-byte tail in a 512-byte
/// slice pins 512 bytes of slab.
size_t EntryCharge(const std::string& key, const SlabPool::Slice& tail) {
  return key.size() + tail.capacity() + kEntryOverhead;
}

}  // namespace

ResponseCache::ResponseCache(size_t max_bytes, size_t num_shards)
    : max_bytes_(max_bytes),
      shard_bytes_(std::max<size_t>(1, max_bytes) /
                   std::max<size_t>(1, num_shards)),
      shards_(std::max<size_t>(1, num_shards)) {}

std::string ResponseCache::MakeKey(uint16_t type, uint64_t epoch,
                                   const uint8_t* body, size_t body_len) {
  std::string key;
  key.resize(sizeof(type) + sizeof(epoch) + body_len);
  std::memcpy(key.data(), &type, sizeof(type));
  std::memcpy(key.data() + sizeof(type), &epoch, sizeof(epoch));
  if (body_len != 0) {
    std::memcpy(key.data() + sizeof(type) + sizeof(epoch), body, body_len);
  }
  return key;
}

ResponseCache::Shard* ResponseCache::ShardFor(std::string_view key) {
  return &shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

bool ResponseCache::Lookup(uint16_t type, uint64_t epoch, const uint8_t* body,
                           size_t body_len, CachedReply* out) {
  const std::string key = MakeKey(type, epoch, body, body_len);
  Shard* shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->map.find(key);
    if (it != shard->map.end()) {
      // Refresh recency: splice moves the node without invalidating the
      // map's string_view into its key.
      shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
      out->flags = it->second->flags;
      out->tail = it->second->tail;  // refcount++, no byte copy
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ResponseCache::EraseLocked(
    Shard* shard,
    std::unordered_map<std::string_view,
                       std::list<Entry>::iterator>::iterator it) {
  // Accounting invariant: a shard's bytes is exactly the sum of its live
  // entries' charges, so removing one can never underflow. A trip here
  // means a replace/evict path charged and discharged different amounts.
  MDS_CHECK(shard->bytes >= it->second->charge);
  shard->bytes -= it->second->charge;
  auto list_it = it->second;
  shard->map.erase(it);
  shard->lru.erase(list_it);
}

void ResponseCache::Insert(uint16_t type, uint64_t epoch, const uint8_t* body,
                           size_t body_len, uint32_t flags,
                           SlabPool::Slice tail) {
  Entry entry;
  entry.key = MakeKey(type, epoch, body, body_len);
  entry.flags = flags;
  entry.tail = std::move(tail);
  entry.charge = EntryCharge(entry.key, entry.tail);
  if (entry.charge > shard_bytes_) return;  // one reply can't wipe a shard

  Shard* shard = ShardFor(entry.key);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto existing = shard->map.find(entry.key);
    if (existing != shard->map.end()) {
      // Racing populates of the same request: last writer wins, no
      // double-charged duplicate entry. EraseLocked discharges the old
      // entry's bytes before the new charge lands below.
      EraseLocked(shard, existing);
    }
    while (shard->bytes + entry.charge > shard_bytes_ && !shard->lru.empty()) {
      auto victim = shard->map.find(shard->lru.back().key);
      EraseLocked(shard, victim);
      ++evicted;
    }
    shard->bytes += entry.charge;
    shard->lru.push_front(std::move(entry));
    shard->map.emplace(shard->lru.front().key, shard->lru.begin());
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

void ResponseCache::Insert(uint16_t type, uint64_t epoch, const uint8_t* body,
                           size_t body_len, uint32_t flags,
                           const uint8_t* tail, size_t tail_len) {
  SlabPool::Slice slice = SlabPool::Global().Allocate(tail_len);
  if (slice) std::memcpy(slice.data(), tail, tail_len);
  Insert(type, epoch, body, body_len, flags, std::move(slice));
}

ResponseCache::StatsSnapshot ResponseCache::Stats() const {
  StatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.bytes += shard.bytes;
    s.entries += shard.lru.size();
  }
  return s;
}

uint64_t ResponseCache::DebugRecomputeBytes() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& e : shard.lru) total += e.charge;
  }
  return total;
}

}  // namespace mds
