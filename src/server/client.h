#ifndef MDS_SERVER_CLIENT_H_
#define MDS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/socket.h"
#include "geom/box.h"
#include "server/protocol.h"

namespace mds {

/// Synchronous client for the mdsd wire protocol — the library tests,
/// benches and examples speak to the server exclusively through this
/// class, so the protocol has exactly two implementations (server,
/// client) and one codec (protocol.h).
///
/// Thread safety: thread-compatible. One QueryClient owns one connection
/// and one in-flight request at a time; use one client per thread (the
/// throughput bench's closed-loop workers do exactly that).
/// Per-request client options (namespace scope so `= {}` default
/// arguments work; a nested class cannot use its default member
/// initializers in the enclosing class's default arguments).
struct QueryOptions {
  /// Server-side deadline for the request, and the client-side I/O
  /// bound for the exchange (plus slack). 0 = none.
  uint32_t deadline_ms = 0;
  /// Permit a degraded (partial) answer over checksum-failed pages.
  bool skip_corrupt = false;
  /// Planner hints (mutually exclusive; force_full_scan wins).
  bool force_full_scan = false;
  bool force_index = false;
  /// Against mdsc: accept a merged reply from only the surviving shards
  /// (kFlagAllowPartial on the wire) instead of a blanket failure when a
  /// shard is exhausted. Plain mdsd ignores the flag.
  bool allow_partial = false;
  /// Client-side I/O slack added on top of deadline_ms for the exchange
  /// bound. 0 = the default 2000 ms; the mdsc coordinator uses a small
  /// value so a backend leg's read deadline fires close to the leg's
  /// share of the budget rather than 2 s later.
  uint32_t exchange_slack_ms = 0;
};

class QueryClient {
 public:
  using Options = QueryOptions;

  /// Result of a box/sample query, including the server-side I/O
  /// accounting and degradation marker.
  struct QueryResult {
    uint64_t row_count = 0;
    std::vector<int64_t> objids;
    uint64_t rows_scanned = 0;
    uint64_t pages_fetched = 0;
    uint64_t pages_read = 0;
    uint64_t pages_skipped = 0;
    bool degraded = false;
    /// True when a coordinator answered from a strict subset of its
    /// shards (kFlagPartial); counts cover only shards_mask.
    bool partial = false;
    uint32_t shards_answered = 0;
    uint32_t shards_total = 0;  ///< 0 = reply came from a single mdsd
    uint64_t shards_mask = 0;
    std::string chosen_path;
  };

  struct KnnResult {
    std::vector<protocol::WireNeighbor> neighbors;  // ascending distance
    bool degraded = false;
    /// True when one or more shards did not answer: the neighbor list is
    /// exact over shards_mask but possibly non-global.
    bool partial = false;
    uint32_t shards_answered = 0;
    uint32_t shards_total = 0;  ///< 0 = reply came from a single mdsd
    uint64_t shards_mask = 0;
  };

  struct HealthResult {
    bool draining = false;
    uint64_t served_rows = 0;
    uint32_t dim = 0;
  };

  /// Connects to an mdsd instance (numeric IPv4 host).
  static Result<QueryClient> Connect(const std::string& host, uint16_t port,
                                     uint64_t connect_timeout_ms = 5000);

  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// Number of stored rows inside `box` (no row payload on the wire).
  Result<uint64_t> PointCount(const Box& box, const Options& options = {});

  /// PointCount with the full reply (row_count plus the I/O accounting and
  /// chosen_path a kBoxQuery reply carries; objids stays empty). The mdsc
  /// coordinator uses this so merged point-count replies keep the same
  /// instrumentation a single server reports.
  Result<QueryResult> PointCountDetailed(const Box& box,
                                         const Options& options = {});

  /// Objids of stored rows inside `box`; `limit` != 0 caps the reply to
  /// the first `limit` matches in clustered row order.
  Result<QueryResult> BoxQuery(const Box& box, uint64_t limit = 0,
                               const Options& options = {});

  /// Exact k nearest stored points to `point`.
  Result<KnnResult> Knn(const std::vector<double>& point, uint32_t k,
                        const Options& options = {});

  /// TABLESAMPLE SYSTEM(percent) + TOP(n) inside `box`, page sampling
  /// seeded by `seed` (same seed, same sample).
  Result<QueryResult> TableSample(const Box& box, double percent, uint64_t n,
                                  uint64_t seed, const Options& options = {});

  Result<HealthResult> Health(const Options& options = {});
  Result<protocol::ServerStatsSnapshot> ServerStats(
      const Options& options = {});

  /// Admin: asks the server to load a new dataset generation and swap it
  /// in (kReload). `path` names a dataset file on the SERVER's
  /// filesystem; empty asks the server to reload its current source.
  /// Loading runs on a server worker, so pass a deadline generous enough
  /// to cover the build (or 0 for the client's long default bound).
  Result<protocol::ReloadReply> Reload(const std::string& path,
                                       const Options& options = {});

  /// Pipelined batch exchanges: all k request frames are written before
  /// any reply is read, so the batch costs one round trip instead of k.
  /// Replies are correlated by request id (the server may interleave
  /// them), and each slot of the returned vector carries that request's
  /// own result — per-request errors (invalid argument, overload
  /// rejection) fail only their slot. A transport failure (timeout,
  /// desynchronized stream, connection loss) closes the connection and
  /// fails every slot that has no reply yet.
  ///
  /// The returned vector always has boxes.size() entries, slot i matching
  /// boxes[i].
  std::vector<Result<uint64_t>> PointCountPipeline(
      const std::vector<Box>& boxes, const Options& options = {});
  std::vector<Result<QueryResult>> BoxQueryPipeline(
      const std::vector<Box>& boxes, uint64_t limit = 0,
      const Options& options = {});

  /// True while the connection has not failed. A failed exchange poisons
  /// the connection (its fd closes when this client is destroyed or
  /// reassigned); callers reconnect with Connect().
  bool connected() const { return sock_.valid() && !poisoned_; }

  /// Aborts an in-flight exchange from another thread: shuts the socket
  /// down both ways so a blocked read/write in the owning thread fails
  /// promptly. Safe concurrently with the owning thread's exchange
  /// because a failed exchange only *poisons* the client — the fd is
  /// closed solely by the owning thread's destructor/reassignment, which
  /// the mdsc coordinator orders after deregistration from the abort
  /// list. An aborted client is never reusable, only destroyable.
  void Abort() { sock_.ShutdownBoth(); }

 private:
  explicit QueryClient(Socket sock) : sock_(std::move(sock)) {}

  /// One request/reply exchange: frames and sends the request payload,
  /// reads the matching reply, decodes its header + status, and leaves
  /// `reader` positioned at the reply body.
  Status RoundTrip(protocol::MessageType type, const Options& options,
                   const std::vector<uint8_t>& body,
                   std::vector<uint8_t>* reply_payload,
                   protocol::MessageHeader* reply_header,
                   size_t* body_offset);

  /// Shared body of PointCount / BoxQuery (same request shape, different
  /// message type).
  Result<QueryResult> BoxQueryInternal(const Box& box, uint64_t limit,
                                       const Options& options,
                                       protocol::MessageType type);

  /// Shared body of the pipelined exchanges: writes all request frames
  /// back-to-back, then reads and correlates the replies. Returns one
  /// decoded QueryReply result per request, in request order.
  std::vector<Result<QueryResult>> PipelineInternal(
      const std::vector<Box>& boxes, uint64_t limit, const Options& options,
      protocol::MessageType type);

  static uint32_t RequestFlags(const Options& options);

  /// Maps a transport-read failure onto the caller's deadline: a bounded
  /// exchange that timed out is kDeadlineExceeded (retryable), not a
  /// generic kUnavailable.
  Status MapExchangeFailure(Status st, const Options& options,
                            const IoDeadline& deadline);

  Socket sock_;
  uint64_t next_request_id_ = 1;
  /// Set by a failed exchange instead of closing the fd: keeps Close()
  /// off exchange threads so Abort()'s cross-thread shutdown can never
  /// race a close (and hit a recycled descriptor).
  bool poisoned_ = false;
};

}  // namespace mds

#endif  // MDS_SERVER_CLIENT_H_
