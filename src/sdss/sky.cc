#include "sdss/sky.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace mds {

namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;
/// Hubble distance c/H0 in h^-1 Mpc; distance = kHubbleDistance * z for
/// the linear (low-z) Hubble law the paper invokes.
constexpr double kHubbleDistance = 2998.0;

}  // namespace

void SkyToCartesian(double ra_deg, double dec_deg, double redshift,
                    double out[3]) {
  double r = kHubbleDistance * redshift;
  double ra = ra_deg * kDegToRad;
  double dec = dec_deg * kDegToRad;
  out[0] = r * std::cos(dec) * std::cos(ra);
  out[1] = r * std::cos(dec) * std::sin(ra);
  out[2] = r * std::sin(dec);
}

SkyCatalog GenerateSkyCatalog(const SkyCatalogConfig& config) {
  Rng rng(config.seed);
  SkyCatalog cat;
  cat.ra.reserve(config.num_galaxies);
  cat.dec.reserve(config.num_galaxies);
  cat.redshift.reserve(config.num_galaxies);
  cat.cluster_id.reserve(config.num_galaxies);
  cat.positions.Reserve(config.num_galaxies);

  // Redshift of a field galaxy: comoving volume goes like z^2 dz at low z,
  // so draw z ~ max_z * U^(1/3).
  auto field_redshift = [&]() {
    return config.max_redshift * std::cbrt(rng.NextDouble());
  };
  // Uniform-on-the-sphere dec within the footprint: sin(dec) uniform.
  auto field_dec = [&]() {
    double smin = std::sin(config.dec_min * kDegToRad);
    double smax = std::sin(config.dec_max * kDegToRad);
    return std::asin(rng.NextUniform(smin, smax)) / kDegToRad;
  };

  // Cluster centers.
  struct Cluster {
    double ra, dec, z;
    double richness;  // relative mass -> member count weight
  };
  std::vector<Cluster> clusters(config.num_clusters);
  double richness_total = 0.0;
  for (Cluster& c : clusters) {
    c.ra = rng.NextUniform(config.ra_min, config.ra_max);
    c.dec = field_dec();
    // Clusters preferentially at moderate redshift (volume-weighted).
    c.z = field_redshift();
    c.richness = rng.NextExponential(1.0) + 0.2;
    richness_total += c.richness;
  }

  double p[3];
  for (uint64_t i = 0; i < config.num_galaxies; ++i) {
    double ra, dec, z;
    int32_t cluster_id = -1;
    if (!clusters.empty() && rng.NextDouble() < config.clustered_fraction) {
      // Pick a cluster with probability proportional to richness.
      double pick = rng.NextUniform(0.0, richness_total);
      size_t ci = 0;
      double acc = 0.0;
      for (; ci + 1 < clusters.size(); ++ci) {
        acc += clusters[ci].richness;
        if (pick <= acc) break;
      }
      const Cluster& c = clusters[ci];
      cluster_id = static_cast<int32_t>(ci);
      // Small angular scatter, large line-of-sight scatter: the Finger of
      // God pointing at the observer.
      ra = c.ra + config.cluster_sigma_deg * rng.NextGaussian() /
                      std::max(std::cos(c.dec * kDegToRad), 0.2);
      dec = c.dec + config.cluster_sigma_deg * rng.NextGaussian();
      z = c.z + config.finger_sigma_z * rng.NextGaussian();
    } else {
      ra = rng.NextUniform(config.ra_min, config.ra_max);
      dec = field_dec();
      z = field_redshift();
    }
    if (z < 0.0005) z = 0.0005;
    cat.ra.push_back(static_cast<float>(ra));
    cat.dec.push_back(static_cast<float>(dec));
    cat.redshift.push_back(static_cast<float>(z));
    cat.cluster_id.push_back(cluster_id);
    SkyToCartesian(ra, dec, z, p);
    cat.positions.Append(p);
  }
  return cat;
}

}  // namespace mds
