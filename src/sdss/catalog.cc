#include "sdss/catalog.h"

#include <algorithm>
#include <cmath>

namespace mds {

void GalaxyLocus(double z, double luminosity, double mags[kNumBands]) {
  // A smooth, curved surface in magnitude space: colors redden nonlinearly
  // with redshift (4000A-break passing through the filters), magnitudes dim
  // with distance modulus ~ 5 log10(z). Shapes are stylized, not
  // astrophysically calibrated; what matters is a nonlinear, locally
  // invertible color(z) relation with curvature.
  double r = 17.5 + 2.0 * std::log10(1.0 + 25.0 * z) + luminosity;
  double gr = 0.55 + 2.2 * z - 1.6 * z * z;
  double ug = 1.15 + 1.9 * z - 1.1 * z * z;
  double ri = 0.40 + 0.9 * z - 0.5 * z * z;
  double iz = 0.30 + 0.6 * z - 0.8 * z * z;
  mags[2] = r;             // r
  mags[1] = r + gr;        // g
  mags[0] = mags[1] + ug;  // u
  mags[3] = r - ri;        // i
  mags[4] = mags[3] - iz;  // z
}

void StellarLocus(double t, double brightness, double mags[kNumBands]) {
  // One-dimensional main-sequence curve from hot/blue (t=0) to cool/red
  // (t=1), with the characteristic kink of the SDSS stellar locus.
  double r = 16.0 + 4.0 * t + brightness;
  double gr = -0.3 + 1.6 * t + 0.25 * std::sin(3.0 * t);
  double ug = 0.8 + 2.1 * t * t;
  double ri = -0.1 + 1.3 * t * t * t + 0.4 * t;
  double iz = 0.05 + 0.55 * t * t;
  mags[2] = r;
  mags[1] = r + gr;
  mags[0] = mags[1] + ug;
  mags[3] = r - ri;
  mags[4] = mags[3] - iz;
}

void QuasarLocus(double z, double brightness, double mags[kNumBands]) {
  // Quasars sit blueward of the stellar locus in u-g and form a compact
  // cloud with mild redshift-dependent wiggles from emission lines.
  double r = 18.8 + 0.8 * std::log10(1.0 + z) + brightness;
  double gr = 0.15 + 0.12 * std::sin(2.2 * z);
  double ug = 0.05 + 0.22 * std::cos(1.7 * z) + 0.08 * z;
  double ri = 0.10 + 0.10 * std::sin(1.3 * z + 0.8);
  double iz = 0.05 + 0.08 * std::cos(2.9 * z);
  mags[2] = r;
  mags[1] = r + gr;
  mags[0] = mags[1] + ug;
  mags[3] = r - ri;
  mags[4] = mags[3] - iz;
}

Catalog GenerateCatalog(const CatalogConfig& config) {
  Rng rng(config.seed);
  Catalog cat;
  cat.colors = PointSet(kNumBands, 0);
  cat.colors.Reserve(config.num_objects);
  cat.classes.reserve(config.num_objects);
  cat.redshifts.reserve(config.num_objects);

  const double p_star = config.star_fraction;
  const double p_galaxy = p_star + config.galaxy_fraction;
  const double p_quasar = p_galaxy + config.quasar_fraction;

  double mags[kNumBands];
  for (uint64_t i = 0; i < config.num_objects; ++i) {
    double u = rng.NextDouble();
    SpectralClass cls;
    double z = 0.0;
    if (u < p_star) {
      cls = SpectralClass::kStar;
      // Beta-like temperature distribution: more cool stars than hot.
      double t = std::pow(rng.NextDouble(), 0.7);
      double b = 1.2 * rng.NextGaussian();
      StellarLocus(t, b, mags);
      // Intrinsic width of the locus.
      for (double& m : mags) m += 0.04 * rng.NextGaussian();
    } else if (u < p_galaxy) {
      cls = SpectralClass::kGalaxy;
      // Redshift distribution ~ z^2 exp(-z/z0) truncated.
      double z0 = config.max_galaxy_redshift / 4.0;
      do {
        z = z0 * (rng.NextExponential(1.0) + rng.NextExponential(1.0) +
                  rng.NextExponential(1.0));
      } while (z > config.max_galaxy_redshift);
      double lum = 0.8 * rng.NextGaussian();
      GalaxyLocus(z, lum, mags);
      for (double& m : mags) m += 0.06 * rng.NextGaussian();
    } else if (u < p_quasar) {
      cls = SpectralClass::kQuasar;
      z = config.max_quasar_redshift * rng.NextDouble();
      double b = 0.7 * rng.NextGaussian();
      QuasarLocus(z, b, mags);
      for (double& m : mags) m += 0.05 * rng.NextGaussian();
    } else {
      cls = SpectralClass::kOutlier;
      // Measurement/calibration failures: start from a random locus point
      // and throw one or more bands far off, or scatter uniformly.
      if (rng.NextDouble() < 0.5) {
        StellarLocus(rng.NextDouble(), rng.NextGaussian(), mags);
        size_t band = static_cast<size_t>(rng.NextBounded(kNumBands));
        mags[band] += (rng.NextDouble() < 0.5 ? -1.0 : 1.0) *
                      (2.0 + rng.NextExponential(0.5));
      } else {
        for (double& m : mags) m = rng.NextUniform(12.0, 28.0);
      }
    }
    // Photometric noise on every band.
    for (double& m : mags) m += config.photometric_noise * rng.NextGaussian();
    cat.colors.Append(mags);
    cat.classes.push_back(cls);
    cat.redshifts.push_back(static_cast<float>(z));
  }
  return cat;
}

ReferenceSplit SplitReferenceSet(const Catalog& catalog, double fraction,
                                 uint64_t seed) {
  Rng rng(seed);
  ReferenceSplit split;
  for (uint64_t i = 0; i < catalog.size(); ++i) {
    bool eligible = catalog.classes[i] == SpectralClass::kGalaxy ||
                    catalog.classes[i] == SpectralClass::kQuasar;
    if (eligible && rng.NextDouble() < fraction) {
      split.reference.push_back(i);
    } else {
      split.unknown.push_back(i);
    }
  }
  return split;
}

}  // namespace mds
