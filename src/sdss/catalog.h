#ifndef MDS_SDSS_CATALOG_H_
#define MDS_SDSS_CATALOG_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/point_set.h"

namespace mds {

/// Spectral type of a celestial object (the color coding of Figure 1).
enum class SpectralClass : uint8_t {
  kStar = 0,
  kGalaxy = 1,
  kQuasar = 2,
  kOutlier = 3,
};

inline constexpr size_t kNumBands = 5;  // u, g, r, i, z

/// Configuration of the synthetic SDSS color-space catalog.
///
/// The real 270M-row magnitude table is not distributable; this generator
/// substitutes it with a mixture model that reproduces the properties the
/// paper's indexing depends on (§2.1): points cluster along low-dimensional
/// loci (a 1-D stellar locus, a redshift-parameterized galaxy surface, a
/// compact quasar cloud), densities contrast by orders of magnitude, and a
/// fraction of rows are outliers from measurement error.
struct CatalogConfig {
  uint64_t num_objects = 100000;
  uint64_t seed = 42;
  double star_fraction = 0.55;
  double galaxy_fraction = 0.35;
  double quasar_fraction = 0.09;
  // Remainder (1 - star - galaxy - quasar) are outliers.
  double photometric_noise = 0.05;  ///< per-band measurement sigma (mag)
  double max_galaxy_redshift = 0.6;
  double max_quasar_redshift = 2.5;
};

/// An in-memory synthetic catalog: 5-band magnitudes plus ground truth
/// (class labels, true redshifts) used to score the §4 applications.
struct Catalog {
  PointSet colors;  ///< num_objects x 5 magnitudes (u, g, r, i, z)
  std::vector<SpectralClass> classes;
  /// True redshift; 0 for stars, small instrumental jitter for outliers.
  std::vector<float> redshifts;

  size_t size() const { return colors.size(); }
};

/// Generates a catalog deterministically from config.seed.
Catalog GenerateCatalog(const CatalogConfig& config);

/// The noiseless galaxy color locus: magnitudes as a smooth nonlinear
/// function of redshift and intrinsic luminosity. Exposed so the photo-z
/// template-fitting baseline can build its (mis-calibrated) template grid
/// from the same family.
void GalaxyLocus(double redshift, double luminosity, double mags[kNumBands]);

/// The 1-D stellar locus parameterized by effective temperature t in [0,1].
void StellarLocus(double temperature, double brightness,
                  double mags[kNumBands]);

/// Quasar locus parameterized by redshift.
void QuasarLocus(double redshift, double brightness, double mags[kNumBands]);

/// Splits a catalog into the paper's reference set (objects with measured
/// redshift, ~1% in SDSS) and unknown set, by deterministic sampling of
/// galaxies/quasars. Returns indices into the catalog.
struct ReferenceSplit {
  std::vector<uint64_t> reference;
  std::vector<uint64_t> unknown;
};
ReferenceSplit SplitReferenceSet(const Catalog& catalog, double fraction,
                                 uint64_t seed);

}  // namespace mds

#endif  // MDS_SDSS_CATALOG_H_
