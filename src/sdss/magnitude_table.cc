#include "sdss/magnitude_table.h"

namespace mds {

Schema MagnitudeTableSchema() {
  return Schema({
      {"objID", ColumnType::kInt64, 0},
      {"u", ColumnType::kFloat32, 0},
      {"g", ColumnType::kFloat32, 0},
      {"r", ColumnType::kFloat32, 0},
      {"i", ColumnType::kFloat32, 0},
      {"z", ColumnType::kFloat32, 0},
      {"class", ColumnType::kInt64, 0},
      {"redshift", ColumnType::kFloat32, 0},
  });
}

Result<Table> MaterializeMagnitudeTable(BufferPool* pool,
                                        const Catalog& catalog,
                                        const std::vector<uint64_t>& order) {
  MDS_ASSIGN_OR_RETURN(Table table, Table::Create(pool, MagnitudeTableSchema()));
  RowBuilder row(&table.schema());
  const uint64_t n = catalog.size();
  for (uint64_t pos = 0; pos < n; ++pos) {
    uint64_t i = order.empty() ? pos : order[pos];
    row.SetInt64(kColObjId, static_cast<int64_t>(i));
    const float* mags = catalog.colors.point(i);
    for (size_t b = 0; b < kNumBands; ++b) {
      row.SetFloat32(kColU + b, mags[b]);
    }
    row.SetInt64(kColClass, static_cast<int64_t>(catalog.classes[i]));
    row.SetFloat32(kColRedshift, catalog.redshifts[i]);
    MDS_RETURN_NOT_OK(table.Append(row));
  }
  return table;
}

}  // namespace mds
