#ifndef MDS_SDSS_SKY_H_
#define MDS_SDSS_SKY_H_

#include <cstdint>
#include <vector>

#include "geom/point_set.h"

namespace mds {

/// Configuration of the synthetic (ra, dec, redshift) survey — the space
/// of the Figure 14 visualization ("the large scale structure of the
/// universe ... e.g. Finger of God structures").
struct SkyCatalogConfig {
  uint64_t num_galaxies = 200000;
  uint64_t seed = 99;
  /// Galaxy clusters scattered through the volume; members get small
  /// angular scatter but a large line-of-sight redshift scatter from
  /// peculiar velocities — the "Finger of God" elongation.
  uint32_t num_clusters = 150;
  double clustered_fraction = 0.5;
  double max_redshift = 0.25;
  /// Survey footprint in degrees (an SDSS-like contiguous cap).
  double ra_min = 130.0, ra_max = 230.0;
  double dec_min = 0.0, dec_max = 60.0;
  /// Peculiar-velocity redshift scatter inside clusters (the finger
  /// length) vs the cluster angular radius in degrees.
  double finger_sigma_z = 0.004;
  double cluster_sigma_deg = 0.35;
};

/// The generated survey: spherical coordinates plus the 3-D Cartesian
/// positions obtained from Hubble's law ("we can trivially compute the
/// radial distance of celestial objects from redshift data", §5.2).
/// Distances are in h^-1 Mpc (c z / H0 with c/H0 = 2998 h^-1 Mpc).
struct SkyCatalog {
  std::vector<float> ra;        ///< degrees
  std::vector<float> dec;       ///< degrees
  std::vector<float> redshift;
  /// True cluster id per galaxy, or -1 for field galaxies (ground truth
  /// for structure-finding tests).
  std::vector<int32_t> cluster_id;
  PointSet positions{3, 0};  ///< Cartesian x, y, z

  size_t size() const { return ra.size(); }
};

/// Generates the survey deterministically from config.seed.
SkyCatalog GenerateSkyCatalog(const SkyCatalogConfig& config);

/// Converts (ra, dec, redshift) to the Cartesian position used above.
void SkyToCartesian(double ra_deg, double dec_deg, double redshift,
                    double out[3]);

}  // namespace mds

#endif  // MDS_SDSS_SKY_H_
