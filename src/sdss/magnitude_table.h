#ifndef MDS_SDSS_MAGNITUDE_TABLE_H_
#define MDS_SDSS_MAGNITUDE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "sdss/catalog.h"
#include "storage/table.h"

namespace mds {

/// Column order of the materialized magnitude table.
enum MagnitudeColumn : size_t {
  kColObjId = 0,
  kColU = 1,
  kColG = 2,
  kColR = 3,
  kColI = 4,
  kColZ = 5,
  kColClass = 6,
  kColRedshift = 7,
};

/// Schema of the magnitude table: objID, the five float magnitudes, the
/// (mostly unknown in reality) spectral class, and true redshift.
Schema MagnitudeTableSchema();

/// Materializes catalog rows into `pool` in the order given by `order`
/// (pass a permutation to cluster the table on an index key; an empty
/// vector means catalog order). Column kColObjId holds the catalog index
/// so ground truth stays joinable.
Result<Table> MaterializeMagnitudeTable(BufferPool* pool,
                                        const Catalog& catalog,
                                        const std::vector<uint64_t>& order);

/// Reads the 5 magnitudes of a row.
inline void ReadMagnitudes(const RowRef& ref, float out[kNumBands]) {
  ref.GetFloat32Span(kColU, kNumBands, out);
}

}  // namespace mds

#endif  // MDS_SDSS_MAGNITUDE_TABLE_H_
