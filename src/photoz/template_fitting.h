#ifndef MDS_PHOTOZ_TEMPLATE_FITTING_H_
#define MDS_PHOTOZ_TEMPLATE_FITTING_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "sdss/catalog.h"

namespace mds {

/// Options for the template-fitting photometric redshift baseline (§4.1,
/// Figure 7).
struct TemplateFittingConfig {
  /// Resolution of the (redshift, luminosity) template grid.
  size_t num_redshift_bins = 240;
  size_t num_luminosity_bins = 21;
  double max_redshift = 0.6;
  double min_luminosity = -2.5;
  double max_luminosity = 2.5;
  /// Systematic per-band calibration offset (mag) baked into the template
  /// library — the "calibration problems of the templates" the paper
  /// blames for Figure 7's scatter. Alternating signs so the error cannot
  /// be absorbed into the luminosity degree of freedom. Zero offsets give
  /// an oracle-calibrated baseline for the ablation.
  std::array<double, kNumBands> calibration_offset = {0.18, -0.14, 0.12,
                                                      -0.16, 0.20};

  /// Redshift-dependent mis-calibration of the template family: the
  /// template colors drift away from the true locus as (0.25 + z) *
  /// miscalibration * warp[band]. This models the classic template photo-z
  /// failure (wavelength-dependent filter/SED calibration errors that grow
  /// as features redshift through the bands) that a flat per-band offset —
  /// absorbable into the luminosity fit — cannot. Set to 0 for the oracle
  /// baseline.
  double miscalibration = 0.2;
};

/// Classic template-fitting photo-z: chi^2 minimization of observed
/// magnitudes against a precomputed grid of template magnitudes. The
/// template family is the same galaxy locus the data was drawn from, but
/// shifted by the configured per-band calibration offsets; the resulting
/// systematic scatter is what the k-NN estimator of §4.1 eliminates.
class TemplateFittingEstimator {
 public:
  static Result<TemplateFittingEstimator> Build(
      const TemplateFittingConfig& config = {});

  /// Estimated redshift of an object from its 5 magnitudes.
  double Estimate(const float* mags) const;

  const TemplateFittingConfig& config() const { return config_; }
  size_t grid_size() const { return grid_redshift_.size(); }

 private:
  TemplateFittingEstimator() = default;

  TemplateFittingConfig config_;
  /// Flattened template grid: magnitudes and the generating redshift.
  std::vector<std::array<double, kNumBands>> grid_mags_;
  std::vector<double> grid_redshift_;
};

}  // namespace mds

#endif  // MDS_PHOTOZ_TEMPLATE_FITTING_H_
