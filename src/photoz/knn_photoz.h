#ifndef MDS_PHOTOZ_KNN_PHOTOZ_H_
#define MDS_PHOTOZ_KNN_PHOTOZ_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/kdtree.h"
#include "core/knn.h"
#include "geom/point_set.h"

namespace mds {

/// Options for the non-parametric photometric redshift estimator (§4.1).
struct KnnPhotoZConfig {
  /// Neighbors fetched from the reference set per estimate.
  size_t k = 32;
  /// Degree of the local polynomial fit over the neighbor colors (0 =
  /// plain average, 1 = the paper's "local low order polynomial fit",
  /// 2 = quadratic).
  int degree = 1;
};

/// Per-estimate diagnostics.
struct PhotoZEstimate {
  double redshift = 0.0;
  double neighbor_distance = 0.0;  ///< distance to the k-th neighbor
  bool fit_used = false;  ///< false when the fit degenerated to an average
};

/// k-NN local polynomial photometric redshift estimator.
///
/// The reference set is the ~1% of objects with spectroscopic redshifts;
/// for an unknown object the estimator fetches its k nearest reference
/// galaxies in color space through the kd-tree k-NN procedure (§3.3) and
/// fits redshift as a local polynomial of the colors — the paper's
/// NearestNeighbors + FitPolynomial + Estimate loop.
class KnnPhotoZEstimator {
 public:
  /// `reference_colors` (n x 5) and `reference_redshifts` (n) must outlive
  /// the estimator.
  static Result<KnnPhotoZEstimator> Build(
      const PointSet* reference_colors,
      const std::vector<float>* reference_redshifts,
      const KnnPhotoZConfig& config = {});

  /// Estimates the redshift of one object from its colors.
  PhotoZEstimate Estimate(const float* colors, KnnStats* stats = nullptr) const;

  const KnnPhotoZConfig& config() const { return config_; }

 private:
  KnnPhotoZEstimator() = default;

  const PointSet* colors_ = nullptr;
  const std::vector<float>* redshifts_ = nullptr;
  std::unique_ptr<KdTreeIndex> tree_;
  KnnPhotoZConfig config_;
};

/// Aggregate accuracy of an estimator over a labeled evaluation set.
struct PhotoZEvaluation {
  double rms_error = 0.0;
  double mean_abs_error = 0.0;
  double bias = 0.0;  ///< mean (estimate - truth)
  uint64_t count = 0;
};

/// Accumulates (estimate, truth) pairs into summary statistics.
class PhotoZScorer {
 public:
  void Add(double estimate, double truth);
  PhotoZEvaluation Finish() const;

 private:
  double sum_sq_ = 0.0;
  double sum_abs_ = 0.0;
  double sum_err_ = 0.0;
  uint64_t n_ = 0;
};

}  // namespace mds

#endif  // MDS_PHOTOZ_KNN_PHOTOZ_H_
