#include "photoz/template_fitting.h"

#include <limits>

namespace mds {

Result<TemplateFittingEstimator> TemplateFittingEstimator::Build(
    const TemplateFittingConfig& config) {
  if (config.num_redshift_bins < 2 || config.num_luminosity_bins < 1) {
    return Status::InvalidArgument("TemplateFittingEstimator: empty grid");
  }
  TemplateFittingEstimator est;
  est.config_ = config;
  est.grid_mags_.reserve(config.num_redshift_bins *
                         config.num_luminosity_bins);
  double mags[kNumBands];
  for (size_t zi = 0; zi < config.num_redshift_bins; ++zi) {
    double z = config.max_redshift * static_cast<double>(zi) /
               static_cast<double>(config.num_redshift_bins - 1);
    for (size_t li = 0; li < config.num_luminosity_bins; ++li) {
      double lum =
          config.num_luminosity_bins == 1
              ? 0.0
              : config.min_luminosity +
                    (config.max_luminosity - config.min_luminosity) *
                        static_cast<double>(li) /
                        static_cast<double>(config.num_luminosity_bins - 1);
      GalaxyLocus(z, lum, mags);
      // Wavelength-dependent warp pattern: strongest in the UV, alternating
      // through the bands — the shape of SED/filter calibration residuals.
      static constexpr double kWarp[kNumBands] = {1.2, -0.5, 0.2, -0.6, 1.1};
      std::array<double, kNumBands> tmpl;
      for (size_t b = 0; b < kNumBands; ++b) {
        tmpl[b] = mags[b] + config.calibration_offset[b] +
                  config.miscalibration * (0.25 + z) * kWarp[b];
      }
      est.grid_mags_.push_back(tmpl);
      est.grid_redshift_.push_back(z);
    }
  }
  return est;
}

double TemplateFittingEstimator::Estimate(const float* mags) const {
  double best_chi2 = std::numeric_limits<double>::infinity();
  double best_z = 0.0;
  for (size_t i = 0; i < grid_mags_.size(); ++i) {
    const auto& tmpl = grid_mags_[i];
    double chi2 = 0.0;
    for (size_t b = 0; b < kNumBands; ++b) {
      double diff = static_cast<double>(mags[b]) - tmpl[b];
      chi2 += diff * diff;
      if (chi2 >= best_chi2) break;
    }
    if (chi2 < best_chi2) {
      best_chi2 = chi2;
      best_z = grid_redshift_[i];
    }
  }
  return best_z;
}

}  // namespace mds
