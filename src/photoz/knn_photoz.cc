#include "photoz/knn_photoz.h"

#include <cmath>

#include "linalg/least_squares.h"

namespace mds {

Result<KnnPhotoZEstimator> KnnPhotoZEstimator::Build(
    const PointSet* reference_colors,
    const std::vector<float>* reference_redshifts,
    const KnnPhotoZConfig& config) {
  if (reference_colors->size() != reference_redshifts->size()) {
    return Status::InvalidArgument(
        "KnnPhotoZEstimator: colors/redshift size mismatch");
  }
  if (reference_colors->size() < config.k) {
    return Status::InvalidArgument(
        "KnnPhotoZEstimator: reference set smaller than k");
  }
  if (config.degree < 0 || config.degree > 2) {
    return Status::InvalidArgument("KnnPhotoZEstimator: degree must be 0..2");
  }
  KnnPhotoZEstimator est;
  est.colors_ = reference_colors;
  est.redshifts_ = reference_redshifts;
  est.config_ = config;
  MDS_ASSIGN_OR_RETURN(KdTreeIndex tree,
                       KdTreeIndex::Build(reference_colors, KdTreeConfig{}));
  est.tree_ = std::make_unique<KdTreeIndex>(std::move(tree));
  return est;
}

PhotoZEstimate KnnPhotoZEstimator::Estimate(const float* colors,
                                            KnnStats* stats) const {
  const size_t d = colors_->dim();
  KdKnnSearcher searcher(tree_.get());
  std::vector<Neighbor> neighbors =
      searcher.BoundaryGrow(colors, config_.k, stats);

  PhotoZEstimate out;
  out.neighbor_distance =
      std::sqrt(neighbors.back().squared_distance);

  // Average fallback (degree 0 or degenerate fit).
  auto average = [&]() {
    double s = 0.0;
    for (const Neighbor& n : neighbors) s += (*redshifts_)[n.id];
    return s / static_cast<double>(neighbors.size());
  };

  if (config_.degree == 0) {
    out.redshift = average();
    return out;
  }

  // Local polynomial fit z = P(colors) over the neighbors, centered on the
  // query to keep the normal equations well scaled.
  Matrix pts(neighbors.size(), d);
  std::vector<double> z(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const float* nc = colors_->point(neighbors[i].id);
    for (size_t j = 0; j < d; ++j) {
      pts(i, j) = static_cast<double>(nc[j]) - static_cast<double>(colors[j]);
    }
    z[i] = (*redshifts_)[neighbors[i].id];
  }
  if (neighbors.size() < PolynomialTermCount(d, config_.degree)) {
    out.redshift = average();
    return out;
  }
  Matrix design = PolynomialDesign(pts, config_.degree);
  Result<std::vector<double>> fit = FitLeastSquares(design, z, 1e-8);
  if (!fit.ok()) {
    out.redshift = average();
    return out;
  }
  // The query point is the origin of the centered coordinates, so the
  // estimate is the constant term.
  out.redshift = (*fit)[0];
  out.fit_used = true;
  return out;
}

void PhotoZScorer::Add(double estimate, double truth) {
  double err = estimate - truth;
  sum_sq_ += err * err;
  sum_abs_ += std::abs(err);
  sum_err_ += err;
  ++n_;
}

PhotoZEvaluation PhotoZScorer::Finish() const {
  PhotoZEvaluation eval;
  eval.count = n_;
  if (n_ == 0) return eval;
  eval.rms_error = std::sqrt(sum_sq_ / static_cast<double>(n_));
  eval.mean_abs_error = sum_abs_ / static_cast<double>(n_);
  eval.bias = sum_err_ / static_cast<double>(n_);
  return eval;
}

}  // namespace mds
