#ifndef MDS_CLUSTER_OUTLIER_H_
#define MDS_CLUSTER_OUTLIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/kdtree.h"
#include "core/voronoi_index.h"

namespace mds {

/// Outlier detection over the indexed color space. The paper points at two
/// routes: "kd-trees can be used efficiently for outlier detection [8]"
/// (§3.2) and "because the volume of the cells is inversely proportional
/// to the local density it can be used for finding clusters and outliers"
/// (§3.4). Both are implemented; scores are comparable (higher = more
/// outlying).

/// k-NN based detector: the outlier score of a point is its distance to
/// its k-th nearest neighbor, computed with the §3.3 search.
class KnnOutlierDetector {
 public:
  /// `points` must outlive the detector.
  static Result<KnnOutlierDetector> Build(const PointSet* points,
                                          size_t k = 8);

  /// Score of an arbitrary query point.
  double Score(const double* p) const;

  /// Scores of every indexed point (excluding the point itself from its
  /// own neighborhood).
  std::vector<double> ScoreAll() const;

  const KdTreeIndex& tree() const { return *tree_; }

 private:
  KnnOutlierDetector() = default;

  const PointSet* points_ = nullptr;
  std::unique_ptr<KdTreeIndex> tree_;
  size_t k_ = 8;
};

/// Voronoi-volume based detector: a point's score is the Monte-Carlo
/// volume of its cell divided by the cell's population — sparse, roomy
/// cells mark their members as outliers.
class VoronoiOutlierDetector {
 public:
  /// `index` must outlive the detector; `volume_samples` controls the
  /// Monte-Carlo volume estimate.
  static Result<VoronoiOutlierDetector> Build(const VoronoiIndex* index,
                                              uint64_t volume_samples,
                                              Rng& rng);

  /// Score of indexed point `id`.
  double Score(uint64_t id) const {
    return cell_score_[index_->tag(id)];
  }

  std::vector<double> ScoreAll() const;

  const std::vector<double>& cell_scores() const { return cell_score_; }

 private:
  VoronoiOutlierDetector() = default;

  const VoronoiIndex* index_ = nullptr;
  std::vector<double> cell_score_;
};

/// Evaluation helper: fraction of true outliers among the `top_fraction`
/// highest-scoring points (precision at the contamination level).
double OutlierPrecisionAtTop(const std::vector<double>& scores,
                             const std::vector<char>& is_outlier,
                             double top_fraction);

}  // namespace mds

#endif  // MDS_CLUSTER_OUTLIER_H_
