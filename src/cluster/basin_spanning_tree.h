#ifndef MDS_CLUSTER_BASIN_SPANNING_TREE_H_
#define MDS_CLUSTER_BASIN_SPANNING_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mds {

/// Basin spanning tree clustering (§4, Figure 6) over a cell graph.
///
/// Every cell links to its densest neighbor when that neighbor is denser
/// than itself ("connected each cell to one neighbor, the one with the
/// largest density"); cells denser than all neighbors are density peaks.
/// Following the links as a gradient process partitions the cells into
/// basins — one cluster per peak.
struct BasinSpanningTree {
  /// Parent cell in the tree; parent[c] == c for density peaks.
  std::vector<uint32_t> parent;
  /// Cluster id per cell: the index of the peak the cell drains to.
  std::vector<uint32_t> cluster;
  /// Peak cell per cluster id.
  std::vector<uint32_t> peaks;

  uint32_t num_clusters() const { return static_cast<uint32_t>(peaks.size()); }
};

/// Builds the BST from a symmetric adjacency graph (e.g. a Voronoi seed
/// graph) and per-cell densities (e.g. inverse cell volumes). Fails if the
/// sizes disagree.
Result<BasinSpanningTree> BuildBasinSpanningTree(
    const std::vector<std::vector<uint32_t>>& graph,
    const std::vector<double>& density);

/// Majority-vote evaluation of an unsupervised clustering against ground
/// truth labels: each cluster is assigned its most frequent true label and
/// accuracy is the fraction of points whose label matches their cluster's
/// majority — the paper's "92% of objects were classified correctly"
/// metric.
struct ClusterClassification {
  double accuracy = 0.0;
  uint32_t num_clusters = 0;
  /// Majority true label per cluster id.
  std::vector<uint32_t> cluster_label;
};

Result<ClusterClassification> EvaluateClusterClassification(
    const std::vector<uint32_t>& point_cluster,
    const std::vector<uint32_t>& point_label, uint32_t num_clusters);

}  // namespace mds

#endif  // MDS_CLUSTER_BASIN_SPANNING_TREE_H_
