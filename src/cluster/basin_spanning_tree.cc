#include "cluster/basin_spanning_tree.h"

#include <algorithm>
#include <unordered_map>

namespace mds {

Result<BasinSpanningTree> BuildBasinSpanningTree(
    const std::vector<std::vector<uint32_t>>& graph,
    const std::vector<double>& density) {
  const size_t n = graph.size();
  if (density.size() != n) {
    return Status::InvalidArgument(
        "BuildBasinSpanningTree: graph/density size mismatch");
  }
  BasinSpanningTree bst;
  bst.parent.resize(n);
  // Total order (density desc, id asc) keeps the gradient process acyclic
  // even on density plateaus.
  auto denser = [&](uint32_t a, uint32_t b) {
    if (density[a] != density[b]) return density[a] > density[b];
    return a < b;
  };
  for (uint32_t c = 0; c < n; ++c) {
    uint32_t best = c;
    for (uint32_t nb : graph[c]) {
      if (nb >= n) {
        return Status::InvalidArgument(
            "BuildBasinSpanningTree: neighbor id out of range");
      }
      if (denser(nb, best)) best = nb;
    }
    bst.parent[c] = best;
  }
  // Resolve each cell to its peak with path compression.
  bst.cluster.assign(n, ~uint32_t{0});
  std::vector<uint32_t> path;
  std::unordered_map<uint32_t, uint32_t> peak_ids;
  for (uint32_t c = 0; c < n; ++c) {
    if (bst.cluster[c] != ~uint32_t{0}) continue;
    path.clear();
    uint32_t cur = c;
    while (bst.parent[cur] != cur && bst.cluster[cur] == ~uint32_t{0}) {
      path.push_back(cur);
      cur = bst.parent[cur];
    }
    uint32_t cluster_id;
    if (bst.cluster[cur] != ~uint32_t{0}) {
      cluster_id = bst.cluster[cur];
    } else {
      // `cur` is a peak.
      auto [it, inserted] =
          peak_ids.emplace(cur, static_cast<uint32_t>(bst.peaks.size()));
      if (inserted) bst.peaks.push_back(cur);
      cluster_id = it->second;
      bst.cluster[cur] = cluster_id;
    }
    for (uint32_t node : path) bst.cluster[node] = cluster_id;
  }
  return bst;
}

Result<ClusterClassification> EvaluateClusterClassification(
    const std::vector<uint32_t>& point_cluster,
    const std::vector<uint32_t>& point_label, uint32_t num_clusters) {
  if (point_cluster.size() != point_label.size()) {
    return Status::InvalidArgument(
        "EvaluateClusterClassification: size mismatch");
  }
  uint32_t max_label = 0;
  for (uint32_t l : point_label) max_label = std::max(max_label, l);
  // counts[cluster][label]
  std::vector<std::vector<uint64_t>> counts(
      num_clusters, std::vector<uint64_t>(max_label + 1, 0));
  for (size_t i = 0; i < point_cluster.size(); ++i) {
    if (point_cluster[i] >= num_clusters) {
      return Status::InvalidArgument(
          "EvaluateClusterClassification: cluster id out of range");
    }
    ++counts[point_cluster[i]][point_label[i]];
  }
  ClusterClassification eval;
  eval.num_clusters = num_clusters;
  eval.cluster_label.resize(num_clusters, 0);
  uint64_t correct = 0;
  for (uint32_t c = 0; c < num_clusters; ++c) {
    uint64_t best = 0;
    uint32_t best_label = 0;
    for (uint32_t l = 0; l <= max_label; ++l) {
      if (counts[c][l] > best) {
        best = counts[c][l];
        best_label = l;
      }
    }
    eval.cluster_label[c] = best_label;
    correct += best;
  }
  eval.accuracy = point_cluster.empty()
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(point_cluster.size());
  return eval;
}

}  // namespace mds
