#include "cluster/outlier.h"

#include <algorithm>
#include <cmath>

#include "core/knn.h"

namespace mds {

Result<KnnOutlierDetector> KnnOutlierDetector::Build(const PointSet* points,
                                                     size_t k) {
  if (k == 0 || points->size() <= k) {
    return Status::InvalidArgument(
        "KnnOutlierDetector: need more points than k");
  }
  KnnOutlierDetector detector;
  detector.points_ = points;
  detector.k_ = k;
  MDS_ASSIGN_OR_RETURN(KdTreeIndex tree,
                       KdTreeIndex::Build(points, KdTreeConfig{}));
  detector.tree_ = std::make_unique<KdTreeIndex>(std::move(tree));
  return detector;
}

double KnnOutlierDetector::Score(const double* p) const {
  KdKnnSearcher searcher(tree_.get());
  std::vector<Neighbor> neighbors = searcher.BoundaryGrow(p, k_);
  return std::sqrt(neighbors.back().squared_distance);
}

std::vector<double> KnnOutlierDetector::ScoreAll() const {
  std::vector<double> scores(points_->size());
  KdKnnSearcher searcher(tree_.get());
  std::vector<double> q(points_->dim());
  for (uint64_t i = 0; i < points_->size(); ++i) {
    const float* p = points_->point(i);
    for (size_t j = 0; j < points_->dim(); ++j) q[j] = p[j];
    // k+1 neighbors: the point itself (distance 0) plus k true neighbors.
    std::vector<Neighbor> neighbors = searcher.BoundaryGrow(q.data(), k_ + 1);
    scores[i] = std::sqrt(neighbors.back().squared_distance);
  }
  return scores;
}

Result<VoronoiOutlierDetector> VoronoiOutlierDetector::Build(
    const VoronoiIndex* index, uint64_t volume_samples, Rng& rng) {
  if (volume_samples == 0) {
    return Status::InvalidArgument(
        "VoronoiOutlierDetector: need volume samples");
  }
  VoronoiOutlierDetector detector;
  detector.index_ = index;
  std::vector<double> volumes = index->EstimateCellVolumes(volume_samples, rng);
  detector.cell_score_.resize(index->num_seeds());
  for (uint32_t c = 0; c < index->num_seeds(); ++c) {
    uint64_t population = index->cell_size(c);
    // Roomy cell, few members => outliers. Empty cells never score.
    detector.cell_score_[c] =
        population == 0 ? 0.0
                        : volumes[c] / static_cast<double>(population);
  }
  return detector;
}

std::vector<double> VoronoiOutlierDetector::ScoreAll() const {
  std::vector<double> scores(index_->points().size());
  for (uint64_t i = 0; i < scores.size(); ++i) {
    scores[i] = Score(i);
  }
  return scores;
}

double OutlierPrecisionAtTop(const std::vector<double>& scores,
                             const std::vector<char>& is_outlier,
                             double top_fraction) {
  MDS_CHECK(scores.size() == is_outlier.size());
  if (scores.empty()) return 0.0;
  size_t top = std::max<size_t>(
      1, static_cast<size_t>(top_fraction * scores.size()));
  std::vector<uint64_t> order(scores.size());
  for (uint64_t i = 0; i < order.size(); ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + top - 1, order.end(),
                   [&](uint64_t a, uint64_t b) {
                     return scores[a] > scores[b];
                   });
  size_t hits = 0;
  for (size_t i = 0; i < top; ++i) {
    if (is_outlier[order[i]]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(top);
}

}  // namespace mds
